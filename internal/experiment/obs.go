package experiment

import (
	"fmt"
	"sync"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/obs"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
	"placeless/internal/trace"
)

// ObsConfig parameterizes the observability experiment (E13): what
// does attaching an Observer cost on the hot hit path, and what do the
// per-stage histograms actually show for a hit / miss / memoized-miss
// workload.
type ObsConfig struct {
	// Docs is the warm working set for the overhead phase.
	Docs int
	// Goroutines is the concurrency of both phases.
	Goroutines int
	// OpsPerGoroutine is the hit count per goroutine in the slept
	// overhead run.
	OpsPerGoroutine int
	// RawOpsPerGoroutine is the hit count per goroutine in the
	// zero-hit-cost run, where the instrumentation is the largest
	// relative fraction of the read (the worst case for overhead).
	RawOpsPerGoroutine int
	// HitCost is the paper's per-hit access cost for the slept run,
	// matching E11 and BenchmarkParallelHitThroughput so the overhead
	// number transfers.
	HitCost time.Duration
	// Users is the fan-out of the stage-visibility phase.
	Users int
	// PropCost is the real-clock execution cost of each of the three
	// universal transforms in the visibility phase.
	PropCost time.Duration
	// PersonalCost is the real-clock cost of each user's watermark.
	PersonalCost time.Duration
	// Seed fixes document contents.
	Seed int64
}

// DefaultObsConfig returns the configuration used by plbench.
func DefaultObsConfig() ObsConfig {
	return ObsConfig{
		Docs:               64,
		Goroutines:         4,
		OpsPerGoroutine:    200,
		RawOpsPerGoroutine: 20000,
		HitCost:            200 * time.Microsecond,
		Users:              8,
		PropCost:           200 * time.Microsecond,
		PersonalCost:       100 * time.Microsecond,
		Seed:               1,
	}
}

// ObsStageRow summarizes one stage histogram after the visibility
// workload.
type ObsStageRow struct {
	// Stage is the placeless_read_stage_duration_seconds label.
	Stage string
	// Count is how many reads recorded this stage.
	Count int64
	// P50 and P99 are bucket-bound quantile estimates.
	P50, P99 time.Duration
	// Mean is the exact mean over the recorded spans.
	Mean time.Duration
}

// ObsResult is experiment E13's output.
type ObsResult struct {
	Config ObsConfig
	// BareRate and ObservedRate are aggregate hits/sec with HitCost
	// slept, Observer detached vs attached.
	BareRate, ObservedRate float64
	// OverheadPct is 100 × (1 − ObservedRate/BareRate).
	OverheadPct float64
	// RawBareRate / RawObservedRate / RawOverheadPct repeat the
	// comparison with zero hit cost: nothing but the lock-and-copy hit
	// path, the worst case for relative instrumentation cost.
	RawBareRate, RawObservedRate float64
	RawOverheadPct               float64
	// Verdicts counts the visibility workload's reads by outcome.
	Verdicts map[string]int64
	// Stages summarizes every stage histogram the workload populated.
	Stages []ObsStageRow
}

// TableData returns the result's header and rows, the shared source
// for the text-table and CSV renderings. E13 mixes throughput scalars
// with per-stage timings, so it renders as (measurement, value) pairs.
func (r ObsResult) TableData() ([]string, [][]string) {
	rows := [][]string{
		{"bare hit rate (hit-cost slept)", fmt.Sprintf("%.0f hits/s", r.BareRate)},
		{"observed hit rate (hit-cost slept)", fmt.Sprintf("%.0f hits/s", r.ObservedRate)},
		{"instrumentation overhead (slept)", fmt.Sprintf("%.2f%%", r.OverheadPct)},
		{"bare hit rate (raw hit path)", fmt.Sprintf("%.0f hits/s", r.RawBareRate)},
		{"observed hit rate (raw hit path)", fmt.Sprintf("%.0f hits/s", r.RawObservedRate)},
		{"instrumentation overhead (raw)", fmt.Sprintf("%.2f%%", r.RawOverheadPct)},
	}
	for _, v := range obs.Verdicts() {
		if n := r.Verdicts[v]; n > 0 {
			rows = append(rows, []string{"reads: " + v, fmt.Sprintf("%d", n)})
		}
	}
	for _, s := range r.Stages {
		rows = append(rows, []string{
			"stage " + s.Stage,
			fmt.Sprintf("n=%d p50=%v p99=%v mean=%v", s.Count, s.P50, s.P99, s.Mean),
		})
	}
	return []string{"measurement", "value"}, rows
}

// Table renders the result as an aligned text table.
func (r ObsResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r ObsResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// obsWorld builds a real-clock cache over cfg.Docs warm documents,
// optionally instrumented.
func obsWorld(cfg ObsConfig, hitCost time.Duration, o *obs.Observer) (*core.Cache, error) {
	clk := clock.Real{}
	src := repo.NewMem("m", clk, simnet.NewPath("free", cfg.Seed))
	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{
		Name:     "obs",
		HitCost:  hitCost,
		Observer: o,
	})
	for i := 0; i < cfg.Docs; i++ {
		id := trace.DocID(i)
		if err := src.Store("/"+id, Content(id, 4096)); err != nil {
			return nil, err
		}
		if _, err := space.CreateDocument(id, "u", &property.RepoBitProvider{Repo: src, Path: "/" + id}); err != nil {
			return nil, err
		}
		if _, err := cache.Read(id, "u"); err != nil {
			return nil, err
		}
	}
	return cache, nil
}

// obsMeasureHits drives g goroutines × ops striding hits and returns
// the aggregate rate in hits/sec.
func obsMeasureHits(cfg ObsConfig, ops int, cache *core.Cache) (float64, error) {
	g := cfg.Goroutines
	var wg sync.WaitGroup
	errs := make([]error, g)
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for op := 0; op < ops; op++ {
				if _, err := cache.Read(trace.DocID((i*31+op)%cfg.Docs), "u"); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(g*ops) / elapsed.Seconds(), nil
}

// obsOverheadPair measures bare-vs-observed hit throughput at one hit
// cost and returns (bare, observed, overhead%).
func obsOverheadPair(cfg ObsConfig, hitCost time.Duration, ops int) (float64, float64, float64, error) {
	bareCache, err := obsWorld(cfg, hitCost, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	bare, err := obsMeasureHits(cfg, ops, bareCache)
	if err != nil {
		return 0, 0, 0, err
	}
	obsCache, err := obsWorld(cfg, hitCost, obs.NewObserver())
	if err != nil {
		return 0, 0, 0, err
	}
	observed, err := obsMeasureHits(cfg, ops, obsCache)
	if err != nil {
		return 0, 0, 0, err
	}
	overhead := 0.0
	if bare > 0 {
		overhead = 100 * (1 - observed/bare)
	}
	return bare, observed, overhead, nil
}

// RunObs measures E13. Phase one quantifies instrumentation overhead:
// the E11 parallel-hit workload with the Observer detached vs
// attached, at the paper's 200µs hit cost and again with zero hit cost
// (worst case — the read is nothing but the lock-and-copy path). Phase
// two demonstrates stage visibility: a memoized fan-out workload whose
// cold miss, intermediate hits, warm hits, and coalesced cold storm
// populate every local stage histogram.
func RunObs(cfg ObsConfig) (ObsResult, error) {
	res := ObsResult{Config: cfg}
	var err error
	res.BareRate, res.ObservedRate, res.OverheadPct, err =
		obsOverheadPair(cfg, cfg.HitCost, cfg.OpsPerGoroutine)
	if err != nil {
		return res, err
	}
	res.RawBareRate, res.RawObservedRate, res.RawOverheadPct, err =
		obsOverheadPair(cfg, 0, cfg.RawOpsPerGoroutine)
	if err != nil {
		return res, err
	}

	// Stage visibility: one shared document, three-transform universal
	// chain, per-user watermarks — real clock so the histograms hold
	// wall time.
	o := obs.NewObserver()
	clk := clock.Real{}
	src := repo.NewMem("vis", clk, simnet.NewPath("free", cfg.Seed+1))
	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{Name: "vis", Memoize: true, Observer: o})
	const id = "shared"
	if err := src.Store("/"+id, Content(id, 16<<10)); err != nil {
		return res, err
	}
	if _, err := space.CreateDocument(id, memoUserID(0), &property.RepoBitProvider{Repo: src, Path: "/" + id}); err != nil {
		return res, err
	}
	for _, p := range []*property.Transformer{
		property.NewSpellCorrector(cfg.PropCost),
		property.NewTranslator(cfg.PropCost),
		property.NewLineNumberer(cfg.PropCost),
	} {
		if err := space.Attach(id, "", docspace.Universal, p); err != nil {
			return res, err
		}
	}
	for i := 0; i < cfg.Users; i++ {
		u := memoUserID(i)
		if i > 0 {
			if _, err := space.AddReference(id, u); err != nil {
				return res, err
			}
		}
		if err := space.Attach(id, u, docspace.Personal, property.NewWatermarker(u, cfg.PersonalCost)); err != nil {
			return res, err
		}
	}
	// Cold miss (full chain), then per-user memoized misses, then warm
	// hits for everyone.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < cfg.Users; i++ {
			if _, err := cache.Read(id, memoUserID(i)); err != nil {
				return res, err
			}
		}
	}
	// Coalesced storm on the first user after an invalidation, to
	// populate flight_wait.
	cache.Invalidate(id, memoUserID(0))
	var wg sync.WaitGroup
	storms := make([]error, cfg.Goroutines)
	for i := 0; i < cfg.Goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, storms[i] = cache.Read(id, memoUserID(0))
		}(i)
	}
	wg.Wait()
	for _, err := range storms {
		if err != nil {
			return res, err
		}
	}

	res.Verdicts = o.VerdictCounts()
	for _, stage := range obs.StageNames() {
		h := o.StageHistogram(stage)
		if h == nil || h.Count() == 0 {
			continue
		}
		res.Stages = append(res.Stages, ObsStageRow{
			Stage: stage,
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			Mean:  h.Mean(),
		})
	}
	return res, nil
}
