package experiment

import (
	"fmt"
	"sync"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
	"placeless/internal/trace"
)

// ParallelConfig parameterizes the parallel-throughput experiment
// (E11): concurrent hit scaling of the sharded cache core against the
// pre-sharding global-mutex discipline, plus single-flight miss
// coalescing.
type ParallelConfig struct {
	// Docs is the warm working set each goroutine strides over.
	Docs int
	// Goroutines lists the concurrency levels to measure.
	Goroutines []int
	// OpsPerGoroutine is the hit count each goroutine performs.
	OpsPerGoroutine int
	// HitCost is the paper's per-hit access cost, slept on the REAL
	// clock so the experiment can observe whether concurrent hits
	// overlap (sharded core) or serialize (seed's mutex held across
	// the sleep). Wall-clock timing is inherently machine-dependent;
	// the speedup column, not the absolute rate, is the result.
	HitCost time.Duration
	// FillCost is the real-clock miss fill cost for the coalescing
	// phase.
	FillCost time.Duration
	// Seed fixes document sizes.
	Seed int64
}

// DefaultParallelConfig returns the configuration used by plbench.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{
		Docs:            64,
		Goroutines:      []int{1, 2, 4, 8},
		OpsPerGoroutine: 50,
		HitCost:         200 * time.Microsecond,
		FillCost:        300 * time.Microsecond,
		Seed:            1,
	}
}

// ParallelRow is one concurrency level's measurements.
type ParallelRow struct {
	// Goroutines is the concurrency level.
	Goroutines int
	// SeedMutexRate is aggregate hits/sec with one global mutex held
	// across each whole read, hit-cost sleep included (the seed
	// discipline).
	SeedMutexRate float64
	// ShardedRate is aggregate hits/sec through the sharded core.
	ShardedRate float64
	// Speedup is ShardedRate / SeedMutexRate.
	Speedup float64
	// ColdFetches is how many read-path executions N concurrent
	// misses on one cold document performed (single-flight: 1).
	ColdFetches int64
	// Coalesced is how many of those misses joined the leader's
	// flight instead of fetching.
	Coalesced int64
}

// ParallelResult is experiment E11's output.
type ParallelResult struct {
	Config ParallelConfig
	Rows   []ParallelRow
}

// TableData returns the result's header and rows, the shared source
// for the text-table and CSV renderings.
func (r ParallelResult) TableData() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Goroutines),
			fmt.Sprintf("%.0f", row.SeedMutexRate),
			fmt.Sprintf("%.0f", row.ShardedRate),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d", row.ColdFetches),
			fmt.Sprintf("%d", row.Coalesced),
		})
	}
	return []string{"goroutines", "seed-mutex hits/s", "sharded hits/s", "speedup", "cold fetches", "coalesced"}, rows
}

// Table renders the result as an aligned text table.
func (r ParallelResult) Table() string {
	header, rows := r.TableData()
	return table(header, rows)
}

// CSV renders the result as comma-separated values.
func (r ParallelResult) CSV() string {
	header, rows := r.TableData()
	return csvTable(header, rows)
}

// parallelWorld builds a REAL-clock cache over a zero-latency source
// with cfg.Docs warm documents. Real time is required because the
// experiment measures whether per-hit costs overlap across goroutines;
// on the virtual clock every sleep is free and all disciplines tie.
func parallelWorld(cfg ParallelConfig, shards int) (*core.Cache, error) {
	clk := clock.Real{}
	src := repo.NewMem("m", clk, simnet.NewPath("free", cfg.Seed))
	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{
		Name:    "parallel",
		Shards:  shards,
		HitCost: cfg.HitCost,
	})
	for i := 0; i < cfg.Docs; i++ {
		id := trace.DocID(i)
		if err := src.Store("/"+id, Content(id, 4096)); err != nil {
			return nil, err
		}
		if _, err := space.CreateDocument(id, "u", &property.RepoBitProvider{Repo: src, Path: "/" + id}); err != nil {
			return nil, err
		}
		if _, err := cache.Read(id, "u"); err != nil {
			return nil, err
		}
	}
	return cache, nil
}

// measureHits runs g goroutines × cfg.OpsPerGoroutine striding reads
// over the warm set and returns the aggregate rate in hits/sec.
func measureHits(cfg ParallelConfig, g int, read func(doc, user string) ([]byte, error)) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, g)
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for op := 0; op < cfg.OpsPerGoroutine; op++ {
				if _, err := read(trace.DocID((i*31+op)%cfg.Docs), "u"); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total := float64(g * cfg.OpsPerGoroutine)
	return total / elapsed.Seconds(), nil
}

// RunParallel measures E11. For each concurrency level it compares the
// sharded core against a baseline that reproduces the seed's
// discipline — one global mutex held across the entire read, per-hit
// cost sleep included — and additionally starts that many concurrent
// misses on one cold document to count read-path executions under
// single-flight coalescing.
func RunParallel(cfg ParallelConfig) (ParallelResult, error) {
	res := ParallelResult{Config: cfg}
	for _, g := range cfg.Goroutines {
		row := ParallelRow{Goroutines: g}

		// Seed-style baseline: serialize whole reads behind one mutex.
		cache, err := parallelWorld(cfg, 1)
		if err != nil {
			return res, err
		}
		var mu sync.Mutex
		row.SeedMutexRate, err = measureHits(cfg, g, func(doc, user string) ([]byte, error) {
			mu.Lock()
			defer mu.Unlock()
			return cache.Read(doc, user)
		})
		if err != nil {
			return res, err
		}

		// Sharded core: hits overlap, locks are per-stripe.
		cache, err = parallelWorld(cfg, 0)
		if err != nil {
			return res, err
		}
		row.ShardedRate, err = measureHits(cfg, g, cache.Read)
		if err != nil {
			return res, err
		}
		if row.SeedMutexRate > 0 {
			row.Speedup = row.ShardedRate / row.SeedMutexRate
		}

		// Single-flight: g concurrent misses on one cold document.
		const id = "cold"
		src := repo.NewMem("m2", clock.Real{}, simnet.NewPath("free", cfg.Seed+1))
		space := docspace.New(clock.Real{}, nil)
		cold := core.New(space, core.Options{Name: "cold", FillCost: cfg.FillCost})
		if err := src.Store("/"+id, Content(id, 4096)); err != nil {
			return res, err
		}
		if _, err := space.CreateDocument(id, "u", &property.RepoBitProvider{Repo: src, Path: "/" + id}); err != nil {
			return res, err
		}
		var wg sync.WaitGroup
		readErrs := make([]error, g)
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, readErrs[i] = cold.Read(id, "u")
			}(i)
		}
		wg.Wait()
		for _, err := range readErrs {
			if err != nil {
				return res, err
			}
		}
		st := cold.Stats()
		row.ColdFetches = st.Misses
		row.Coalesced = st.CoalescedMisses

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
