package experiment

// Rendering invariants: every result type implements Result, and its
// Table and CSV renderings agree with TableData (same cells, different
// framing).

import (
	"strings"
	"testing"
	"time"
)

// sampleResults constructs one literal instance of every result type.
func sampleResults() []Result {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Result{
		Table1Result{Rows: []Table1Row{{Source: "parcweb", Size: 1915, NoCache: ms(9), Miss: ms(10), Hit: ms(1)}}},
		NVResult{Rows: []NVRow{{Mode: VerifierOnly, MeanHit: ms(1), MeanRead: ms(2), HitRatio: 0.5, StaleReads: 3, Notifications: 4, VerifierPolls: 5}}},
		NVSweepResult{Rates: []NVSweepRow{{UpdateEvery: 10, Rows: []NVRow{{Mode: NotifierOnly, MeanRead: ms(1)}}}}},
		ReplacementResult{Rows: []ReplacementRow{{Policy: "gds", HitRatio: 0.5, ByteHitRatio: 0.25, MeanRead: ms(25), Evictions: 7}}},
		SharingResult{Rows: []SharingRow{{PersonalizedFrac: 0.25, Entries: 240, BytesLogical: 1000, BytesStored: 500, Saved: 0.5}}},
		CacheabilityResult{Rows: []CacheabilityRow{{Mix: "100/0/0", HitRatio: 0.9, MeanRead: ms(1), EventsForwarded: 2}}},
		ChainsResult{Rows: []ChainRow{{Chain: 3, NoCache: ms(30), Hit: ms(1), ReplacementCost: ms(30)}}},
		QoSResult{Rows: []QoSRow{{Config: "qos-on", QoSHitRatio: 0.99, QoSMeanRead: ms(80), QoSWorstRead: ms(80), MetTarget: true, OverallHitRatio: 0.3}}},
		CollectionResult{Rows: []CollectionRow{{Config: "prefetch-on", FirstRead: ms(100), MeanSubsequent: ms(1), TotalWalk: ms(110), Prefetches: 7}}},
		CostAblationResult{Rows: []CostAblationRow{{Config: "full", HitRatio: 0.5, MeanRead: ms(25)}}},
		PlacementResult{Rows: []PlacementRow{{Placement: "app+server", MeanRead: ms(8), P99Read: ms(190)}}},
		ParallelResult{Rows: []ParallelRow{{Goroutines: 8, SeedMutexRate: 870, ShardedRate: 7400, Speedup: 8.5, ColdFetches: 1, Coalesced: 7}}},
	}
}

func TestAllResultsRenderConsistently(t *testing.T) {
	for _, res := range sampleResults() {
		header, rows := res.TableData()
		if len(header) == 0 {
			t.Fatalf("%T: empty header", res)
		}
		for i, r := range rows {
			if len(r) != len(header) {
				t.Fatalf("%T: row %d has %d cells, header has %d", res, i, len(r), len(header))
			}
		}
		tbl := res.Table()
		csv := res.CSV()
		// Same line counts: header + separator + rows vs header + rows.
		tblLines := strings.Count(strings.TrimRight(tbl, "\n"), "\n") + 1
		csvLines := strings.Count(strings.TrimRight(csv, "\n"), "\n") + 1
		if tblLines != len(rows)+2 || csvLines != len(rows)+1 {
			t.Fatalf("%T: table %d lines, csv %d lines, rows %d", res, tblLines, csvLines, len(rows))
		}
		// Every cell appears in both renderings.
		for _, r := range rows {
			for _, cell := range r {
				if !strings.Contains(tbl, cell) {
					t.Fatalf("%T: table missing cell %q", res, cell)
				}
				// CSV may quote the cell; strip quotes for the check.
				if !strings.Contains(strings.ReplaceAll(csv, `"`, ""), strings.ReplaceAll(cell, `"`, "")) {
					t.Fatalf("%T: csv missing cell %q", res, cell)
				}
			}
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	out := csvTable([]string{"a", "b"}, [][]string{{`x,y`, `he said "hi"`}})
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"he said ""hi"""`) {
		t.Fatalf("csv quoting: %q", out)
	}
}
