// Package store is the durable tier beneath the in-memory
// signature-addressed blob store: append-only binary segments hold the
// bytes (keyed by content signature, checksummed per record, indexed
// by scan on open), and a JSON-lines meta log records which cache
// entries and universal intermediates those bytes back, plus the
// invalidation epochs needed to refuse entries invalidated while the
// process was down.
//
// The paper's cache pays for every miss with transform re-execution,
// so a restart otherwise means an empty store and a thundering herd of
// chain re-runs. This tier keeps what is expensive to rebuild — the
// caller applies the cost policy; the store applies the safety policy:
// a record is served only if its checksum and content signature verify
// and its generation is not older than the last recorded invalidation
// epoch for its document.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"placeless/internal/sig"
)

// metaLogName is the JSON-lines metadata log, replayed on open in the
// same stop-at-last-complete-line discipline as the server journal.
const metaLogName = "meta.log"

// DefaultSegmentMaxBytes is the roll threshold for blob segments.
const DefaultSegmentMaxBytes = 64 << 20

// EntryMeta describes one durable cache entry: enough to re-install
// the entry in memory and to re-derive its validity without trusting
// anything but content addresses.
type EntryMeta struct {
	Doc  string        `json:"doc"`
	User string        `json:"user"`
	Sig  sig.Signature `json:"sig"`
	// SourceSig and the two chain fingerprints are the entry's content
	// key at demotion time; promotion recomputes the current key and
	// refuses the entry on any mismatch.
	SourceSig   sig.Signature `json:"src"`
	UniversalFP sig.Signature `json:"ufp"`
	PersonalFP  sig.Signature `json:"pfp"`
	// Gen is the document's invalidation generation when the entry was
	// demoted; entries older than the last persisted epoch are dropped.
	Gen uint64 `json:"gen"`
	// Cost is the replacement cost at demotion time (nanoseconds on
	// the wire), re-fed to the policy on promotion.
	Cost time.Duration `json:"cost"`
}

// IntermediateMeta describes a durable universal intermediate. These
// are structurally valid by construction — (source signature, chain
// fingerprint) is the whole key — so no epoch applies.
type IntermediateMeta struct {
	SourceSig   sig.Signature `json:"src"`
	Fingerprint sig.Signature `json:"fp"`
	Sig         sig.Signature `json:"sig"`
	Cost        time.Duration `json:"cost"`
}

// metaRecord is one line of the meta log; T selects which of the
// embedded shapes is meaningful.
type metaRecord struct {
	T     string            `json:"t"` // "entry" | "inter" | "epoch"
	Entry *EntryMeta        `json:"e,omitempty"`
	Inter *IntermediateMeta `json:"i,omitempty"`
	Doc   string            `json:"doc,omitempty"`
	Gen   uint64            `json:"gen,omitempty"`
}

// Recovery reports what opening a store directory found, for logs and
// the daemons' /status endpoints.
type Recovery struct {
	Blobs         int   // valid blob records indexed
	Entries       int   // entries surviving replay (latest-wins, epoch- and blob-filtered)
	Intermediates int   // intermediates surviving replay
	EpochDocs     int   // documents with a persisted invalidation epoch
	DroppedStale  int   // entries dropped because an epoch superseded them
	DroppedNoBlob int   // entries/intermediates dropped for want of their blob
	LostBlobBytes int64 // torn/corrupt segment tails not indexed
	LostMetaBytes int64 // torn/corrupt meta-log tail truncated away
}

// Stats is a point-in-time snapshot for observability.
type Stats struct {
	Blobs         int
	BlobBytes     int64
	Segments      int
	Entries       int
	Intermediates int
	EpochDocs     int
}

// Options tunes a Store; the zero value is ready to use.
type Options struct {
	// SegmentMaxBytes rolls the active blob segment once it exceeds
	// this size; 0 means DefaultSegmentMaxBytes.
	SegmentMaxBytes int64
}

// Store is a durable content-addressed tier. All methods are safe for
// concurrent use; callers must not hold cache locks across them (they
// do file I/O).
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	refs      map[sig.Signature]blobRef
	files     map[int]*os.File
	active    int
	activeEnd int64
	blobBytes int64

	metaF   *os.File
	entries map[string]EntryMeta          // doc \x00 user → latest meta
	inters  map[interKey]IntermediateMeta // (src, fp) → latest meta
	epochs  map[string]uint64             // doc → highest persisted generation

	closed bool
}

type interKey struct {
	src sig.Signature
	fp  sig.Signature
}

func entryKey(doc, user string) string { return doc + "\x00" + user }

// Open opens (or creates) a store rooted at dir, rebuilding the blob
// index by segment scan and the metadata maps by log replay. Corrupt
// tails in either file family are truncated away and reported in
// Recovery, never returned as errors: corruption is a recoverable
// state here, by design.
func Open(dir string, opts Options) (*Store, Recovery, error) {
	var rec Recovery
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, err
	}
	refs, files, active, activeEnd, lost, err := openSegments(dir)
	if err != nil {
		return nil, rec, err
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		refs:      refs,
		files:     files,
		active:    active,
		activeEnd: activeEnd,
		entries:   make(map[string]EntryMeta),
		inters:    make(map[interKey]IntermediateMeta),
		epochs:    make(map[string]uint64),
	}
	for _, ref := range refs {
		s.blobBytes += ref.size
	}
	rec.Blobs = len(refs)
	rec.LostBlobBytes = lost
	if err := s.replayMeta(&rec); err != nil {
		s.closeFiles()
		return nil, rec, err
	}
	rec.Entries = len(s.entries)
	rec.Intermediates = len(s.inters)
	rec.EpochDocs = len(s.epochs)
	return s, rec, nil
}

// replayMeta rebuilds the metadata maps from the JSON-lines log,
// stopping at the first line that is incomplete or unparseable and
// truncating the file there so the next append starts on a clean
// line boundary. Latest-wins per key; entries superseded by a
// persisted epoch or missing their blob are dropped.
func (s *Store) replayMeta(rec *Recovery) error {
	path := filepath.Join(s.dir, metaLogName)
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	var validEnd int64
	for len(raw) > 0 {
		nl := -1
		for i, b := range raw {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // unterminated tail: torn final write
		}
		line := raw[:nl]
		raw = raw[nl+1:]
		if len(strings.TrimSpace(string(line))) == 0 {
			validEnd += int64(nl + 1)
			continue
		}
		var m metaRecord
		if err := json.Unmarshal(line, &m); err != nil {
			break // corrupt line: stop, everything after is untrusted
		}
		switch m.T {
		case "entry":
			if m.Entry != nil {
				s.entries[entryKey(m.Entry.Doc, m.Entry.User)] = *m.Entry
			}
		case "inter":
			if m.Inter != nil {
				s.inters[interKey{m.Inter.SourceSig, m.Inter.Fingerprint}] = *m.Inter
			}
		case "epoch":
			if m.Gen > s.epochs[m.Doc] {
				s.epochs[m.Doc] = m.Gen
			}
		default:
			// Unknown record types from a future version are skipped,
			// not fatal: forward compatibility for the log format.
		}
		validEnd += int64(nl + 1)
	}
	// Filter what replay accumulated: epochs beat entries regardless
	// of line order, and a meta record without its blob is useless.
	for k, e := range s.entries {
		if e.Gen < s.epochs[e.Doc] {
			delete(s.entries, k)
			rec.DroppedStale++
			continue
		}
		if _, ok := s.refs[e.Sig]; !ok {
			delete(s.entries, k)
			rec.DroppedNoBlob++
		}
	}
	for k, im := range s.inters {
		if _, ok := s.refs[im.Sig]; !ok {
			delete(s.inters, k)
			rec.DroppedNoBlob++
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if info.Size() > validEnd {
		rec.LostMetaBytes = info.Size() - validEnd
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return err
	}
	s.metaF = f
	return nil
}

// appendMeta writes one log line. Callers hold s.mu.
func (s *Store) appendMeta(m metaRecord) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = s.metaF.Write(append(b, '\n'))
	return err
}

// PutBlob stores payload under its content signature, deduplicating
// against blobs already on disk, and returns that signature.
func (s *Store) PutBlob(payload []byte) (sig.Signature, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return sig.Zero, fmt.Errorf("store: closed")
	}
	buf, sg := encodeRecord(payload)
	if _, ok := s.refs[sg]; ok {
		return sg, nil // content-addressed: same bytes, already durable
	}
	if s.activeEnd > 0 && s.activeEnd+int64(len(buf)) > s.opts.SegmentMaxBytes {
		if err := s.rollLocked(); err != nil {
			return sig.Zero, err
		}
	}
	f := s.files[s.active]
	if _, err := f.WriteAt(buf, s.activeEnd); err != nil {
		return sig.Zero, err
	}
	s.refs[sg] = blobRef{seg: s.active, offset: s.activeEnd + recordHeaderSize, size: int64(len(payload))}
	s.activeEnd += int64(len(buf))
	s.blobBytes += int64(len(payload))
	return sg, nil
}

// rollLocked seals the active segment and starts the next one.
func (s *Store) rollLocked() error {
	next := s.active + 1
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(next)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.files[next] = f
	s.active = next
	s.activeEnd = 0
	return nil
}

// GetBlob returns the payload stored under sg, verifying the content
// signature end to end before serving it. A blob that fails
// verification is dropped from the index and reported as absent —
// the store never serves bytes it cannot prove are the ones asked for.
func (s *Store) GetBlob(sg sig.Signature) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.refs[sg]
	if !ok || s.closed {
		return nil, false
	}
	payload := make([]byte, ref.size)
	if _, err := s.files[ref.seg].ReadAt(payload, ref.offset); err != nil {
		delete(s.refs, sg)
		return nil, false
	}
	if sig.Of(payload) != sg {
		delete(s.refs, sg)
		return nil, false
	}
	return payload, true
}

// HasBlob reports whether sg is indexed, without reading it.
func (s *Store) HasBlob(sg sig.Signature) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.refs[sg]
	return ok
}

// PutEntry records (durably) that a cache entry's bytes live on disk.
// The blob must already have been stored with PutBlob.
func (s *Store) PutEntry(e EntryMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.refs[e.Sig]; !ok {
		return fmt.Errorf("store: entry %s/%s references unknown blob %s", e.Doc, e.User, e.Sig)
	}
	if err := s.appendMeta(metaRecord{T: "entry", Entry: &e}); err != nil {
		return err
	}
	s.entries[entryKey(e.Doc, e.User)] = e
	return nil
}

// GetEntry returns the newest durable entry for (doc, user), if one
// exists, its blob is present, and no persisted epoch supersedes it.
func (s *Store) GetEntry(doc, user string) (EntryMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[entryKey(doc, user)]
	if !ok || e.Gen < s.epochs[doc] {
		return EntryMeta{}, false
	}
	if _, ok := s.refs[e.Sig]; !ok {
		return EntryMeta{}, false
	}
	return e, true
}

// PutIntermediate records a durable universal intermediate.
func (s *Store) PutIntermediate(im IntermediateMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.refs[im.Sig]; !ok {
		return fmt.Errorf("store: intermediate %s references unknown blob %s", im.Fingerprint, im.Sig)
	}
	if err := s.appendMeta(metaRecord{T: "inter", Inter: &im}); err != nil {
		return err
	}
	s.inters[interKey{im.SourceSig, im.Fingerprint}] = im
	return nil
}

// GetIntermediate returns the durable intermediate keyed by (source
// signature, chain fingerprint), if present with its blob.
func (s *Store) GetIntermediate(src, fp sig.Signature) (IntermediateMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	im, ok := s.inters[interKey{src, fp}]
	if !ok {
		return IntermediateMeta{}, false
	}
	if _, ok := s.refs[im.Sig]; !ok {
		return IntermediateMeta{}, false
	}
	return im, true
}

// AppendEpoch durably records that doc reached invalidation generation
// gen: after a restart, any durable entry for doc with an older
// generation will be refused. Called on every invalidation so that
// invalidations arriving while entries sit on disk survive a crash.
func (s *Store) AppendEpoch(doc string, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendMeta(metaRecord{T: "epoch", Doc: doc, Gen: gen}); err != nil {
		return err
	}
	if gen > s.epochs[doc] {
		s.epochs[doc] = gen
	}
	return nil
}

// Epochs returns a copy of the persisted invalidation epochs, used by
// the cache on boot to seed its generation counters.
func (s *Store) Epochs() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.epochs))
	for d, g := range s.epochs {
		out[d] = g
	}
	return out
}

// Entries returns a copy of the surviving durable entry metadata, in
// no particular order.
func (s *Store) Entries() []EntryMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EntryMeta, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	return out
}

// Stats snapshots the store for observability.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Blobs:         len(s.refs),
		BlobBytes:     s.blobBytes,
		Segments:      len(s.files),
		Entries:       len(s.entries),
		Intermediates: len(s.inters),
		EpochDocs:     len(s.epochs),
	}
}

func (s *Store) closeFiles() {
	for _, f := range s.files {
		f.Close()
	}
	if s.metaF != nil {
		s.metaF.Close()
	}
}

// Close syncs and releases the store's files. The store is unusable
// afterwards; reopen with Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, f := range s.files {
		if err := f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.metaF != nil {
		if err := s.metaF.Sync(); err != nil && first == nil {
			first = err
		}
		if err := s.metaF.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
