package store

import (
	"hash/crc32"

	"placeless/internal/sig"
)

// recordCRC covers signature ‖ payload with CRC-32 (IEEE). The CRC
// catches casual bit rot cheaply at scan time; the MD5 signature check
// behind it is the authoritative content-address verification. Having
// both means a scan can reject a damaged record without recomputing
// MD5 for the (common) case of a mangled header.
func recordCRC(s sig.Signature, payload []byte) uint32 {
	crc := crc32.NewIEEE()
	crc.Write(s[:])
	crc.Write(payload)
	return crc.Sum32()
}
