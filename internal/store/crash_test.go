package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// failingWriter is the interposing writer for crash-consistency
// sweeps: it passes bytes through until the budget is exhausted, then
// fails — simulating a power cut at an exact byte offset in the
// append stream.
type failingWriter struct {
	w      io.Writer
	budget int
}

var errPowerCut = fmt.Errorf("simulated power cut")

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errPowerCut
	}
	if len(p) > f.budget {
		n, _ := f.w.Write(p[:f.budget])
		f.budget -= n
		return n, errPowerCut
	}
	n, err := f.w.Write(p)
	f.budget -= n
	return n, err
}

// TestCrashConsistencySweep is the power-cut-at-every-offset pattern:
// an append stream of two records is cut after N bytes for every N
// across the record boundary, and for each truncation point the store
// must open without error, recover exactly the records that were
// fully durable, serve them byte-exact, and accept new appends.
func TestCrashConsistencySweep(t *testing.T) {
	p1 := []byte("crash-sweep first record")
	p2 := []byte("crash-sweep second record, slightly longer")
	rec1, sig1 := encodeRecord(p1)
	rec2, sig2 := encodeRecord(p2)
	stream := append(append([]byte(nil), rec1...), rec2...)

	for n := 0; n <= len(stream); n++ {
		n := n
		t.Run(fmt.Sprintf("cut=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			f, err := os.Create(filepath.Join(dir, segmentName(1)))
			if err != nil {
				t.Fatal(err)
			}
			fw := &failingWriter{w: f, budget: n}
			_, werr := fw.Write(stream)
			if n < len(stream) && werr == nil {
				t.Fatal("failing writer did not fail")
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			s, rec, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after cut at %d: %v", n, err)
			}
			defer s.Close()

			wantFirst := n >= len(rec1)
			wantSecond := n >= len(stream)
			if got, ok := s.GetBlob(sig1); ok != wantFirst {
				t.Fatalf("first record served=%v, want %v", ok, wantFirst)
			} else if ok && !bytes.Equal(got, p1) {
				t.Fatalf("first record corrupted: %q", got)
			}
			if got, ok := s.GetBlob(sig2); ok != wantSecond {
				t.Fatalf("second record served=%v, want %v", ok, wantSecond)
			} else if ok && !bytes.Equal(got, p2) {
				t.Fatalf("second record corrupted: %q", got)
			}
			wantBlobs := 0
			if wantFirst {
				wantBlobs++
			}
			if wantSecond {
				wantBlobs++
			}
			if rec.Blobs != wantBlobs {
				t.Fatalf("recovery indexed %d blobs, want %d", rec.Blobs, wantBlobs)
			}
			durable := 0
			if wantFirst {
				durable = len(rec1)
			}
			if wantSecond {
				durable = len(stream)
			}
			if rec.LostBlobBytes != int64(n-durable) {
				t.Fatalf("lost bytes = %d at cut %d, want %d", rec.LostBlobBytes, n, n-durable)
			}

			// The tier must keep working after any cut: append, read
			// back, and survive one more reopen.
			p3 := []byte("post-cut append")
			sig3, err := s.PutBlob(p3)
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := s.GetBlob(sig3); !ok || !bytes.Equal(got, p3) {
				t.Fatal("append after cut not readable")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, rec2nd, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if rec2nd.LostBlobBytes != 0 {
				t.Fatalf("second open after repair still lost %d bytes", rec2nd.LostBlobBytes)
			}
			if got, ok := s2.GetBlob(sig3); !ok || !bytes.Equal(got, p3) {
				t.Fatal("post-cut append lost across reopen")
			}
		})
	}
}

// TestCrashConsistencyMetaSweep applies the same power-cut sweep to
// the meta log: cut the byte stream of two JSON lines at every offset
// across the first line's boundary; the first entry must survive iff
// its newline was durable, and replay must never error or resurrect
// the second.
func TestCrashConsistencyMetaSweep(t *testing.T) {
	// Build a reference store to obtain the exact on-disk byte stream.
	ref := t.TempDir()
	s, _ := openT(t, ref)
	sg, err := s.PutBlob([]byte("meta-sweep blob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "d1", User: "u", Sig: sg, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "d2", User: "u", Sig: sg, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	stream, err := os.ReadFile(filepath.Join(ref, metaLogName))
	if err != nil {
		t.Fatal(err)
	}
	segBytes, err := os.ReadFile(filepath.Join(ref, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	line1 := bytes.IndexByte(stream, '\n') + 1
	if line1 <= 0 {
		t.Fatal("no newline in reference meta log")
	}

	for n := line1 - 4; n <= len(stream); n++ {
		n := n
		t.Run(fmt.Sprintf("cut=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segmentName(1)), segBytes, 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := os.Create(filepath.Join(dir, metaLogName))
			if err != nil {
				t.Fatal(err)
			}
			fw := &failingWriter{w: f, budget: n}
			fw.Write(stream)
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			s2, rec, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after meta cut at %d: %v", n, err)
			}
			defer s2.Close()
			_, ok1 := s2.GetEntry("d1", "u")
			if want := n >= line1; ok1 != want {
				t.Fatalf("first entry survived=%v, want %v", ok1, want)
			}
			_, ok2 := s2.GetEntry("d2", "u")
			if want := n >= len(stream); ok2 != want {
				t.Fatalf("second entry survived=%v, want %v", ok2, want)
			}
			if n < len(stream) && rec.LostMetaBytes == 0 && n > line1 {
				t.Fatal("mid-line cut not reported as lost meta bytes")
			}
		})
	}
}
