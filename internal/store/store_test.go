package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"placeless/internal/sig"
)

func openT(t *testing.T, dir string) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

func TestBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 4096),
		[]byte("hello"), // duplicate: must dedup
	}
	sigs := make([]sig.Signature, len(payloads))
	for i, p := range payloads {
		sg, err := s.PutBlob(p)
		if err != nil {
			t.Fatal(err)
		}
		if sg != sig.Of(p) {
			t.Fatalf("PutBlob returned %s, want content signature %s", sg, sig.Of(p))
		}
		sigs[i] = sg
	}
	if st := s.Stats(); st.Blobs != 3 {
		t.Fatalf("after dedup, %d blobs indexed, want 3", st.Blobs)
	}
	for i, p := range payloads {
		got, ok := s.GetBlob(sigs[i])
		if !ok {
			t.Fatalf("blob %d missing", i)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("blob %d: got %q, want %q", i, got, p)
		}
	}
	if _, ok := s.GetBlob(sig.Of([]byte("never stored"))); ok {
		t.Fatal("GetBlob returned a blob that was never stored")
	}
}

func TestReopenRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	var sigs []sig.Signature
	for i := 0; i < 50; i++ {
		sg, err := s.PutBlob([]byte(fmt.Sprintf("payload-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sg)
	}
	if err := s.PutEntry(EntryMeta{Doc: "d1", User: "u1", Sig: sigs[0], SourceSig: sigs[1], Gen: 3, Cost: 7}); err != nil {
		t.Fatal(err)
	}
	fpA := sig.Of([]byte("chain-a"))
	if err := s.PutIntermediate(IntermediateMeta{SourceSig: sigs[1], Fingerprint: fpA, Sig: sigs[2], Cost: 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEpoch("d2", 11); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := openT(t, dir)
	if rec.Blobs != 50 || rec.Entries != 1 || rec.Intermediates != 1 || rec.EpochDocs != 1 {
		t.Fatalf("recovery = %+v, want 50 blobs / 1 entry / 1 intermediate / 1 epoch doc", rec)
	}
	if rec.LostBlobBytes != 0 || rec.LostMetaBytes != 0 {
		t.Fatalf("clean shutdown lost bytes: %+v", rec)
	}
	for i, sg := range sigs {
		got, ok := s2.GetBlob(sg)
		if !ok || !bytes.Equal(got, []byte(fmt.Sprintf("payload-%03d", i))) {
			t.Fatalf("blob %d not recovered intact", i)
		}
	}
	e, ok := s2.GetEntry("d1", "u1")
	if !ok || e.Sig != sigs[0] || e.Gen != 3 || e.Cost != 7 {
		t.Fatalf("entry not recovered: %+v ok=%v", e, ok)
	}
	im, ok := s2.GetIntermediate(sigs[1], fpA)
	if !ok || im.Sig != sigs[2] {
		t.Fatalf("intermediate not recovered: %+v ok=%v", im, ok)
	}
	if g := s2.Epochs()["d2"]; g != 11 {
		t.Fatalf("epoch not recovered: got %d, want 11", g)
	}
}

// TestTruncatedTailRecovery cuts bytes off the active segment at every
// possible boundary class and re-opens: the scan must recover every
// record before the cut and never serve the cut one.
func TestTruncatedTailRecovery(t *testing.T) {
	for _, cut := range []int64{1, recordHeaderSize - 1, recordHeaderSize, recordHeaderSize + 3} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s, _ := openT(t, dir)
			a, err := s.PutBlob([]byte("first record, must survive"))
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.PutBlob([]byte("second record, gets torn"))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, segmentName(1))
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()-cut); err != nil {
				t.Fatal(err)
			}

			s2, rec := openT(t, dir)
			if rec.Blobs != 1 {
				t.Fatalf("recovered %d blobs, want 1", rec.Blobs)
			}
			if rec.LostBlobBytes == 0 {
				t.Fatal("recovery did not report the lost tail")
			}
			if _, ok := s2.GetBlob(a); !ok {
				t.Fatal("intact first record not served after tail truncation")
			}
			if _, ok := s2.GetBlob(b); ok {
				t.Fatal("torn record served")
			}
			// The next append must land cleanly after the repair.
			c, err := s2.PutBlob([]byte("post-recovery append"))
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := s2.GetBlob(c); !ok || !bytes.Equal(got, []byte("post-recovery append")) {
				t.Fatal("append after tail repair not readable")
			}
		})
	}
}

// TestFlippedChecksumByte corrupts a single byte of the first record's
// CRC field on disk: the record must be rejected at scan, and —
// because a mid-segment corruption makes everything after it
// untrustworthy — the following record goes with it. Never a panic,
// never bad bytes.
func TestFlippedChecksumByte(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	a, err := s.PutBlob([]byte("record with a soon-to-be-bad checksum"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PutBlob([]byte("record after the corruption"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[8+sig.Size] ^= 0xFF // first byte of record 1's CRC
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := openT(t, dir)
	if rec.Blobs != 0 {
		t.Fatalf("recovered %d blobs past a corrupt checksum, want 0", rec.Blobs)
	}
	if _, ok := s2.GetBlob(a); ok {
		t.Fatal("served the record whose checksum was flipped")
	}
	if _, ok := s2.GetBlob(b); ok {
		t.Fatal("served a record that followed corruption")
	}
}

// TestFlippedPayloadByte flips one payload byte: CRC and MD5 must both
// be capable of catching it (the scan rejects it before indexing).
func TestFlippedPayloadByte(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	a, err := s.PutBlob([]byte("payload to be silently rotted"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[recordHeaderSize] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir)
	if rec.Blobs != 0 {
		t.Fatalf("indexed a rotted payload: %+v", rec)
	}
	if _, ok := s2.GetBlob(a); ok {
		t.Fatal("served rotted bytes")
	}
}

// TestSegmentRoll forces tiny segments and checks blobs spread across
// several files and all recover on reopen.
func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var sigs []sig.Signature
	for i := 0; i < 20; i++ {
		sg, err := s.PutBlob(bytes.Repeat([]byte{byte(i)}, 100))
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sg)
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("expected segment roll, still %d segment(s)", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir)
	if rec.Blobs != 20 {
		t.Fatalf("recovered %d blobs across segments, want 20", rec.Blobs)
	}
	for i, sg := range sigs {
		got, ok := s2.GetBlob(sg)
		if !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Fatalf("blob %d lost across the roll", i)
		}
	}
}

// TestEpochFiltersEntries pins the invalidated-while-down discipline:
// an entry demoted at generation G must stop being served the moment
// a later epoch is persisted, both live and across a reopen — and the
// filtering is order-independent (epoch line before or after entry).
func TestEpochFiltersEntries(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	sg, err := s.PutBlob([]byte("stale-capable content"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "d", User: "u", Sig: sg, Gen: 5}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetEntry("d", "u"); !ok {
		t.Fatal("entry missing before epoch")
	}
	if err := s.AppendEpoch("d", 6); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetEntry("d", "u"); ok {
		t.Fatal("entry served live past a newer epoch")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir)
	if rec.DroppedStale != 1 {
		t.Fatalf("replay dropped %d stale entries, want 1", rec.DroppedStale)
	}
	if _, ok := s2.GetEntry("d", "u"); ok {
		t.Fatal("entry served after reopen past a newer epoch")
	}
	// Same generation is not stale: epoch G refuses only Gen < G —
	// an entry installed at the bumped generation is post-invalidation.
	if err := s2.PutEntry(EntryMeta{Doc: "d", User: "u", Sig: sg, Gen: 6}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetEntry("d", "u"); !ok {
		t.Fatal("entry at the epoch generation refused")
	}
}

// TestMetaTornFinalLine truncates the meta log mid-JSON: replay must
// stop at the last complete line, truncate the tail, and keep
// appending cleanly.
func TestMetaTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	sg, err := s.PutBlob([]byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "keep", User: "u", Sig: sg, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "torn", User: "u", Sig: sg, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, metaLogName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the final line's JSON.
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := openT(t, dir)
	if rec.LostMetaBytes == 0 {
		t.Fatal("torn meta tail not reported")
	}
	if _, ok := s2.GetEntry("keep", "u"); !ok {
		t.Fatal("complete meta line lost to the torn tail")
	}
	if _, ok := s2.GetEntry("torn", "u"); ok {
		t.Fatal("half-written meta line replayed")
	}
	// Appends after the repair must round-trip.
	if err := s2.PutEntry(EntryMeta{Doc: "after", User: "u", Sig: sg, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, _ := openT(t, dir)
	if _, ok := s3.GetEntry("after", "u"); !ok {
		t.Fatal("append after meta-tail repair lost")
	}
}

// TestEntryWithoutBlobDropped covers the missing-blob filter: a meta
// record whose payload was in the torn segment tail must not survive
// replay.
func TestEntryWithoutBlobDropped(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	keep, err := s.PutBlob([]byte("keep-blob"))
	if err != nil {
		t.Fatal(err)
	}
	lost, err := s.PutBlob([]byte("lost-blob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "keep", User: "u", Sig: keep, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "lost", User: "u", Sig: lost, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	fpF := sig.Of([]byte("chain-f"))
	if err := s.PutIntermediate(IntermediateMeta{SourceSig: keep, Fingerprint: fpF, Sig: lost}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second blob record off the segment.
	path := filepath.Join(dir, segmentName(1))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, rec := openT(t, dir)
	if rec.DroppedNoBlob != 2 {
		t.Fatalf("dropped %d blob-less meta records, want 2 (entry + intermediate)", rec.DroppedNoBlob)
	}
	if _, ok := s2.GetEntry("keep", "u"); !ok {
		t.Fatal("entry with intact blob dropped")
	}
	if _, ok := s2.GetEntry("lost", "u"); ok {
		t.Fatal("entry served without its blob")
	}
	if _, ok := s2.GetIntermediate(keep, fpF); ok {
		t.Fatal("intermediate served without its blob")
	}
}

// TestLatestWins: two PutEntry calls for the same (doc, user) — replay
// must keep the later one.
func TestLatestWins(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	old, err := s.PutBlob([]byte("old"))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := s.PutBlob([]byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "d", User: "u", Sig: old, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEntry(EntryMeta{Doc: "d", User: "u", Sig: nw, Gen: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir)
	if rec.Entries != 1 {
		t.Fatalf("replay kept %d entries for one key, want 1", rec.Entries)
	}
	e, ok := s2.GetEntry("d", "u")
	if !ok || e.Sig != nw {
		t.Fatalf("latest entry did not win: %+v ok=%v", e, ok)
	}
}
