package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"placeless/internal/sig"
)

// Binary blob segments: the durable half of the content-addressed
// store that holds the bytes themselves. Each segment is an
// append-only file of self-describing records,
//
//	magic  (4 bytes, "PLSG")
//	length (4 bytes, little-endian payload size)
//	sig    (16 bytes, MD5 content signature of the payload)
//	crc    (4 bytes, little-endian CRC-32 (IEEE) of sig ‖ payload)
//	payload
//
// and carries no other structure — the signature → (segment, offset)
// index is rebuilt by a full scan on open, the same recovery-by-replay
// shape as the server's configuration journal, in binary form. A
// record is trusted only if its magic, bounds, CRC, and content
// signature all check out; the first record that fails ends the scan
// of its segment, because everything after an append-stream corruption
// is unordered garbage. The active (highest-numbered) segment is
// physically truncated back to its last valid record so the next
// append lands on a clean boundary — a torn final write (power cut
// mid-append) therefore costs exactly the record being written, never
// an earlier one.

// segMagic brands every record. Four literal bytes rather than an
// integer so the on-disk format is byte-order-independent by
// construction for the magic itself.
var segMagic = [4]byte{'P', 'L', 'S', 'G'}

// recordHeaderSize is the fixed prefix before the payload.
const recordHeaderSize = 4 + 4 + sig.Size + 4

// segmentPattern names segment files; the numeric component orders
// them, and scanning walks them in that order.
const segmentPattern = "seg-%06d.plseg"

// blobRef locates one payload inside the segment set.
type blobRef struct {
	seg    int
	offset int64 // of the payload, past the header
	size   int64
}

// encodeRecord renders one record (header + payload) into a fresh
// buffer. The signature is computed here so a record can never be
// written with a mismatched content address.
func encodeRecord(payload []byte) ([]byte, sig.Signature) {
	s := sig.Of(payload)
	buf := make([]byte, recordHeaderSize+len(payload))
	copy(buf[0:4], segMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[8:8+sig.Size], s[:])
	binary.LittleEndian.PutUint32(buf[8+sig.Size:recordHeaderSize], recordCRC(s, payload))
	copy(buf[recordHeaderSize:], payload)
	return buf, s
}

// segmentName returns the file name of segment n.
func segmentName(n int) string { return fmt.Sprintf(segmentPattern, n) }

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var nums []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), segmentPattern, &n); err == nil && e.Name() == segmentName(n) {
			nums = append(nums, n)
		}
	}
	sort.Ints(nums)
	return nums, nil
}

// scanResult is what one segment scan recovered.
type scanResult struct {
	// refs are the valid records, in append order.
	refs map[sig.Signature]blobRef
	// validEnd is the offset just past the last valid record.
	validEnd int64
	// lostBytes counts bytes past validEnd (torn or corrupt tail).
	lostBytes int64
}

// scanSegment rebuilds the index of one segment file. It never
// returns an error for corruption — corruption is a recoverable state,
// answered by stopping at the last valid record — only for I/O
// failures reading the file at all.
func scanSegment(path string, seg int) (scanResult, error) {
	res := scanResult{refs: make(map[sig.Signature]blobRef)}
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return res, err
	}
	size := info.Size()

	var off int64
	header := make([]byte, recordHeaderSize)
	for {
		if size-off < recordHeaderSize {
			break // truncated header (or clean EOF at off == size)
		}
		if _, err := f.ReadAt(header, off); err != nil {
			return res, err
		}
		if [4]byte(header[0:4]) != segMagic {
			break // corrupt magic: nothing after it is trustworthy
		}
		plen := int64(binary.LittleEndian.Uint32(header[4:8]))
		if plen > size-off-recordHeaderSize {
			break // length runs past EOF: torn final write
		}
		var s sig.Signature
		copy(s[:], header[8:8+sig.Size])
		wantCRC := binary.LittleEndian.Uint32(header[8+sig.Size : recordHeaderSize])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(io.NewSectionReader(f, off+recordHeaderSize, plen), payload); err != nil {
			return res, err
		}
		if recordCRC(s, payload) != wantCRC || sig.Of(payload) != s {
			break // flipped bits in header or payload
		}
		res.refs[s] = blobRef{seg: seg, offset: off + recordHeaderSize, size: plen}
		off += recordHeaderSize + plen
	}
	res.validEnd = off
	res.lostBytes = size - off
	return res, nil
}

// openSegments scans every segment in dir, truncates the active
// segment's invalid tail, and returns the merged index plus open
// read handles. The returned active handle is positioned for appends
// at validEnd.
func openSegments(dir string) (refs map[sig.Signature]blobRef, files map[int]*os.File, active int, activeEnd int64, lost int64, err error) {
	nums, err := listSegments(dir)
	if err != nil {
		return nil, nil, 0, 0, 0, err
	}
	refs = make(map[sig.Signature]blobRef)
	files = make(map[int]*os.File)
	cleanup := func() {
		for _, f := range files {
			f.Close()
		}
	}
	if len(nums) == 0 {
		nums = []int{1}
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), nil, 0o644); err != nil {
			return nil, nil, 0, 0, 0, err
		}
	}
	for _, n := range nums {
		path := filepath.Join(dir, segmentName(n))
		res, err := scanSegment(path, n)
		if err != nil {
			cleanup()
			return nil, nil, 0, 0, 0, err
		}
		lost += res.lostBytes
		for s, ref := range res.refs {
			refs[s] = ref
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			cleanup()
			return nil, nil, 0, 0, 0, err
		}
		files[n] = f
		active, activeEnd = n, res.validEnd
	}
	// Only the active segment is repaired in place: sealed segments
	// are never rewritten, their lost tails are simply not indexed.
	if f := files[active]; f != nil {
		if err := f.Truncate(activeEnd); err != nil {
			cleanup()
			return nil, nil, 0, 0, 0, err
		}
	}
	return refs, files, active, activeEnd, lost, nil
}
