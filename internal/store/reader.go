package store

import (
	"fmt"
	"io"

	"placeless/internal/sig"
	"placeless/internal/stream"
)

// BlobReader streams one blob's payload bytes out of a segment file.
// It reads through the segment's shared *os.File with ReadAt (via
// io.SectionReader), so concurrent streams — and the store's own
// appends to the active segment — never race on a file offset.
//
// BlobReader implements io.WriterTo, which io.Copy (and the v2 wire's
// zero-copy serve path) prefers: WriteTo pumps the section through a
// pooled fixed-size chunk instead of allocating a copy buffer per
// stream. Unlike GetBlob, streaming does not re-verify the content
// signature per read — it relies on the CRC + signature verification
// the open-time segment scan already performed. Callers that must
// prove the bytes (the cache's disk-promotion path) keep using
// GetBlob.
type BlobReader struct {
	sr *io.SectionReader
}

// OpenBlob returns a reader over the payload stored under sg. The
// handle stays valid until the store is closed; it does not pin any
// memory beyond the section bounds.
func (s *Store) OpenBlob(sg sig.Signature) (*BlobReader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	ref, ok := s.refs[sg]
	if !ok {
		return nil, fmt.Errorf("store: no blob %s", sg)
	}
	f := s.files[ref.seg]
	if f == nil {
		return nil, fmt.Errorf("store: segment %d not open", ref.seg)
	}
	return &BlobReader{sr: io.NewSectionReader(f, ref.offset, ref.size)}, nil
}

// Size returns the blob's payload length in bytes.
func (b *BlobReader) Size() int64 { return b.sr.Size() }

// Read implements io.Reader.
func (b *BlobReader) Read(p []byte) (int, error) { return b.sr.Read(p) }

// WriteTo implements io.WriterTo through the stream package's pooled
// chunk pump.
func (b *BlobReader) WriteTo(w io.Writer) (int64, error) {
	return stream.CopyPooled(w, b.sr)
}
