package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"placeless/internal/sig"
)

// FuzzSegmentRoundTrip hands the segment scanner adversarial file
// contents three ways — a valid record stream with a fuzzed tail
// appended, a fuzzed prefix alone, and a valid stream with one fuzzed
// byte position mutated — and holds it to the store's safety
// contract: open never errors on corruption, never panics, and every
// blob the rebuilt index serves is byte-exact under its signature.
func FuzzSegmentRoundTrip(f *testing.F) {
	rec1, _ := encodeRecord([]byte("fuzz seed record one"))
	rec2, _ := encodeRecord([]byte("fuzz seed record two"))
	valid := append(append([]byte(nil), rec1...), rec2...)

	f.Add([]byte(nil), 0)
	f.Add(valid, len(valid))
	f.Add(valid[:len(valid)-3], 5)
	f.Add([]byte("PLSG garbage that is not a record"), 2)
	f.Add(bytes.Repeat([]byte{0x00}, 64), 10)
	f.Add(append(append([]byte(nil), valid...), 'P', 'L', 'S', 'G', 0xFF, 0xFF, 0xFF, 0x7F), 7)

	f.Fuzz(func(t *testing.T, tail []byte, mutate int) {
		for name, contents := range map[string][]byte{
			"raw":        tail,
			"valid+tail": append(append([]byte(nil), valid...), tail...),
			"mutated":    mutateStream(valid, mutate),
		} {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segmentName(1)), contents, 0o644); err != nil {
				t.Fatal(err)
			}
			s, rec, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("%s: open errored on corrupt input: %v", name, err)
			}
			// Every indexed blob must verify end to end.
			s.mu.Lock()
			sigs := make([]sig.Signature, 0, len(s.refs))
			for sg := range s.refs {
				sigs = append(sigs, sg)
			}
			s.mu.Unlock()
			if len(sigs) != rec.Blobs {
				t.Fatalf("%s: index size %d != recovery count %d", name, len(sigs), rec.Blobs)
			}
			for _, sg := range sigs {
				payload, ok := s.GetBlob(sg)
				if !ok {
					t.Fatalf("%s: indexed blob %s unreadable", name, sg)
				}
				if sig.Of(payload) != sg {
					t.Fatalf("%s: served bytes do not match signature %s", name, sg)
				}
			}
			// The repaired segment must accept appends and round-trip.
			p := []byte("post-fuzz append")
			sg, err := s.PutBlob(p)
			if err != nil {
				t.Fatalf("%s: append after recovery: %v", name, err)
			}
			if got, ok := s.GetBlob(sg); !ok || !bytes.Equal(got, p) {
				t.Fatalf("%s: append after recovery unreadable", name)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("%s: close: %v", name, err)
			}
			s2, _, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("%s: reopen: %v", name, err)
			}
			if got, ok := s2.GetBlob(sg); !ok || !bytes.Equal(got, p) {
				t.Fatalf("%s: append lost across reopen", name)
			}
			s2.Close()
		}
	})
}

// mutateStream flips one byte of a copy of stream at position p
// (mod len), returning the copy; an empty stream passes through.
func mutateStream(stream []byte, p int) []byte {
	if len(stream) == 0 {
		return nil
	}
	out := append([]byte(nil), stream...)
	if p < 0 {
		p = -p
	}
	out[p%len(out)] ^= 0x40
	return out
}
