// Package metrics provides the measurement plumbing for the
// experiment harness: duration histograms and labeled counters over
// simulated time.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a cumulative counter safe for lock-free concurrent use.
// Hot cache paths (hit/miss/byte accounting in internal/core) use
// Counters so bookkeeping never serializes behind a mutex. The zero
// value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which may be negative for gauge-style counters such
// as current byte footprints).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the value; used when a gauge is recomputed or reset
// wholesale (e.g. cache Close).
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Histogram accumulates duration observations. It keeps every sample
// (experiments here are small enough) so exact percentiles are
// available. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sum += d
	h.sorted = false
}

// Count reports the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// sortLocked ensures the sample slice is ordered.
func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 with no samples.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	if p <= 0 {
		return h.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// Summary renders count/mean/p50/p99/max in a compact form.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Counters is a labeled counter set, safe for concurrent use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments label by delta.
func (c *Counters) Add(label string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[label] += delta
}

// Get returns the current value of label (0 if never touched).
func (c *Counters) Get(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[label]
}

// Labels returns all labels in sorted order.
func (c *Counters) Labels() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stopwatch measures elapsed time on any clock-like Now function,
// which is how experiments time operations against virtual clocks.
type Stopwatch struct {
	now   func() time.Time
	start time.Time
}

// NewStopwatch starts timing immediately.
func NewStopwatch(now func() time.Time) *Stopwatch {
	return &Stopwatch{now: now, start: now()}
}

// Lap returns the elapsed time and restarts the watch.
func (s *Stopwatch) Lap() time.Duration {
	t := s.now()
	d := t.Sub(s.start)
	s.start = t
	return d
}
