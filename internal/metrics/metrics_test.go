package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Observe(ms(10))
	h.Observe(ms(20))
	h.Observe(ms(30))
	if h.Mean() != ms(20) {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(ms(i))
	}
	if got := h.Percentile(50); got != ms(50) {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != ms(99) {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != ms(100) {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Percentile(0); got != ms(1) {
		t.Fatalf("p0 = %v", got)
	}
	if h.Min() != ms(1) || h.Max() != ms(100) {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramUnorderedObservations(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{5, 1, 9, 3, 7} {
		h.Observe(ms(v))
	}
	if h.Percentile(50) != ms(5) {
		t.Fatalf("p50 = %v", h.Percentile(50))
	}
	// Observe after a percentile query re-sorts correctly.
	h.Observe(ms(100))
	if h.Max() != ms(100) {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	h.Observe(ms(4))
	s := h.Summary()
	for _, want := range []string{"n=1", "mean=4ms", "p50=4ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary = %q missing %q", s, want)
		}
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("hits", 2)
	c.Add("hits", 3)
	c.Add("misses", 1)
	if c.Get("hits") != 5 || c.Get("misses") != 1 || c.Get("unknown") != 0 {
		t.Fatal("counter values wrong")
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "hits" || labels[1] != "misses" {
		t.Fatalf("Labels = %v", labels)
	}
}

func TestStopwatch(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	sw := NewStopwatch(clock)
	now = now.Add(ms(25))
	if d := sw.Lap(); d != ms(25) {
		t.Fatalf("Lap = %v", d)
	}
	now = now.Add(ms(5))
	if d := sw.Lap(); d != ms(5) {
		t.Fatalf("second Lap = %v (watch not restarted)", d)
	}
}

// Property: mean lies within [min, max] and percentiles are monotone.
func TestHistogramInvariantsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(time.Duration(v) * time.Microsecond)
		}
		mean := h.Mean()
		if mean < h.Min() || mean > h.Max() {
			return false
		}
		prev := time.Duration(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
