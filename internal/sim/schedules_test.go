package sim

// Named regression schedules: each test pins one historically subtle
// interleaving as a deterministic scenario through the sim harness, so
// a reintroduced bug fails a test with a name instead of a seed sweep.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/event"
	"placeless/internal/property"
	"placeless/internal/remote"
	"placeless/internal/server"
)

// scheduleWorld builds a pinned world for a scripted schedule: remote
// off unless asked, periodic/overflow flushing off unless asked.
func scheduleWorld(t *testing.T, seed int64, mut func(*Config)) *World {
	t.Helper()
	off := false
	zero := 0
	d0 := time.Duration(0)
	cfg := Config{Seed: seed, Remote: &off, MaxDirty: &zero, FlushEvery: &d0}
	if mut != nil {
		mut(&cfg)
	}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// expect renders what a read of (doc, user) must return once src is
// the document's stored content.
func expect(w *World, doc, user string, src []byte) []byte {
	return w.model.docs[doc].render(src, user)
}

// raceWriter is a test property that fires a callback the first time
// content is written through the Placeless system. The callback runs
// inside WriteDocument's event dispatch — i.e. exactly between Flush's
// dirty-table snapshot and its cleanup — which turns a nanosecond-wide
// race window into a deterministic schedule.
type raceWriter struct {
	property.Base
	fire func()
}

func (r *raceWriter) Events() []event.Kind { return []event.Kind{event.ContentWritten} }

func (r *raceWriter) OnEvent(_ *property.EventContext, e event.Event) {
	if e.Kind == event.ContentWritten && r.fire != nil {
		f := r.fire
		r.fire = nil
		f()
	}
}

// TestScheduleFlushRacingWrite pins the write-back lost-update race:
// a Write landing while Flush is storing the previous buffer must
// survive to the next flush cycle — Flush may only clear the dirty
// entry it actually stored. The racing write is injected from a
// contentWritten handler, so it always lands mid-flush. Catches
// regressions of Flush's snapshot-identity guard.
func TestScheduleFlushRacingWrite(t *testing.T) {
	wb := core.WriteBack
	w := scheduleWorld(t, 11, func(c *Config) { c.Mode = &wb })
	doc := w.model.order[0]
	owner := w.model.docs[doc].users[0]

	hook := &raceWriter{Base: property.Base{PropName: "race-writer"}}
	if err := w.space.Attach(doc, "", docspace.Universal, hook); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		vA := []byte(fmt.Sprintf("a%04d", i))
		vB := []byte(fmt.Sprintf("b%04d", i))
		if err := w.cache.Write(doc, owner, vA); err != nil {
			t.Fatal(err)
		}
		var hookErr error
		hook.fire = func() { hookErr = w.cache.Write(doc, owner, vB) }
		if err := w.cache.Flush(); err != nil {
			t.Fatal(err)
		}
		if hookErr != nil {
			t.Fatal(hookErr)
		}
		// vA was stored and vB landed mid-flush: vB must still be
		// buffered, not silently discarded by the flush's cleanup.
		if !w.cache.DirtyFor(doc, owner) {
			t.Fatalf("iter %d: flush dropped the racing write from its dirty table", i)
		}
		if err := w.cache.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := w.cache.Read(doc, owner)
		if err != nil {
			t.Fatal(err)
		}
		if want := expect(w, doc, owner, vB); !bytes.Equal(got, want) {
			t.Fatalf("iter %d: write racing flush was lost: read %q, want %q", i, got, want)
		}
	}
}

// TestScheduleMaxDirtyOverflowOrdering pins the overflow flush: the
// write that pushes the dirty set past MaxDirty must synchronously
// flush everything, and every buffered write must reach the
// repository.
func TestScheduleMaxDirtyOverflowOrdering(t *testing.T) {
	wb := core.WriteBack
	two := 2
	var w *World
	// Deterministically find a seed whose world has ≥ 3 documents.
	for seed := int64(1); ; seed++ {
		w = scheduleWorld(t, seed, func(c *Config) { c.Mode = &wb; c.MaxDirty = &two })
		if len(w.model.order) >= 3 {
			break
		}
	}
	writes := map[string][]byte{}
	for i, doc := range w.model.order[:3] {
		data := []byte(fmt.Sprintf("ov%d", i))
		writes[doc] = data
		if err := w.cache.Write(doc, w.model.docs[doc].users[0], data); err != nil {
			t.Fatal(err)
		}
	}
	// The third write exceeded MaxDirty=2 and must have flushed inline.
	if n := w.cache.Dirty(); n != 0 {
		t.Fatalf("after overflow, %d entries still dirty, want 0", n)
	}
	for doc, data := range writes {
		owner := w.model.docs[doc].users[0]
		got, err := w.cache.Read(doc, owner)
		if err != nil {
			t.Fatal(err)
		}
		if want := expect(w, doc, owner, data); !bytes.Equal(got, want) {
			t.Fatalf("overflow flush lost %s: read %q, want %q", doc, got, want)
		}
	}
}

// TestScheduleReadYourWritesAfterDrop pins write-back visibility: a
// buffered Write drops the writer's cached read entry, but the repo
// still holds the old bits, so reads return the old content until the
// flush — and must observe the write immediately after it.
func TestScheduleReadYourWritesAfterDrop(t *testing.T) {
	wb := core.WriteBack
	w := scheduleWorld(t, 13, func(c *Config) { c.Mode = &wb })
	doc := w.model.order[0]
	owner := w.model.docs[doc].users[0]

	before, err := w.cache.Read(doc, owner)
	if err != nil {
		t.Fatal(err)
	}
	next := []byte("ryw-next")
	if err := w.cache.Write(doc, owner, next); err != nil {
		t.Fatal(err)
	}
	// Deliberately pre-flush: the buffered write is not yet readable.
	mid, err := w.cache.Read(doc, owner)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mid, before) {
		t.Fatalf("pre-flush read changed: got %q, want the old content %q", mid, before)
	}
	if err := w.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := w.cache.Read(doc, owner)
	if err != nil {
		t.Fatal(err)
	}
	if want := expect(w, doc, owner, next); !bytes.Equal(after, want) {
		t.Fatalf("read-your-writes after flush: got %q, want %q", after, want)
	}
}

// TestKillRestartFreshness pins reconnect freshness: a remote cache
// whose connection was killed while a write landed must, after
// reconnect and settling, serve the new content — the resubscribe +
// suspect-window logic may not let the pre-kill copy linger.
func TestKillRestartFreshness(t *testing.T) {
	on := true
	wt := core.WriteThrough
	rcap := int64(1 << 20)
	// Find a seed + key whose content the remote cache actually stores
	// (cacheability is seed-derived): the regression needs a cached
	// pre-kill entry to go stale.
	var (
		w          *World
		doc, owner string
	)
seeds:
	for seed := int64(1); ; seed++ {
		w = scheduleWorld(t, seed, func(c *Config) {
			c.Remote = &on
			c.Mode = &wt
			c.RemoteCapacity = &rcap
		})
		// Half the seeds boot with a lossy wire; this schedule needs a
		// clean one until the scripted kill.
		w.net.SetFaults(0, 0, 0, 0)
		if err := w.settle(); err != nil {
			t.Fatal(err)
		}
		for _, id := range w.model.order {
			u := w.model.docs[id].users[0]
			// Warm, then re-read: a Hit means the entry is cached.
			err := w.guarded("warm-read", func() error {
				if _, e := w.rc.Read(id, u); e != nil {
					return e
				}
				_, e := w.rc.Read(id, u)
				return e
			})
			if err != nil {
				t.Fatal(err)
			}
			if w.rc.Stats().Hits > 0 {
				doc, owner = id, u
				break seeds
			}
		}
	}
	// Partition before killing the connections so reconnect attempts
	// cannot complete: the write below must land while the remote side
	// is provably down, guaranteeing its push invalidation is lost.
	w.net.Partition()
	w.net.BreakConns()
	next := []byte("post-kill")
	if err := w.guarded("write", func() error {
		return w.cache.Write(doc, owner, next)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.settle(); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := w.guarded("post-settle-read", func() error {
		var e error
		got, e = w.rc.Read(doc, owner)
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if want := expect(w, doc, owner, next); !bytes.Equal(got, want) {
		t.Fatalf("remote read after kill+write+settle: got %q, want %q", got, want)
	}
}

// TestScheduleKillRestartDiskTier pins the durable tier's warm-restart
// contract under the stale-read oracle: a killed cache's successor must
// recover the warm working set from disk (≥90% of untouched entries
// promote without running a transform), must refuse entries for the
// document rewritten out-of-band while the process was down, and every
// post-restart read must be byte-legal against the model.
func TestScheduleKillRestartDiskTier(t *testing.T) {
	on := true
	wt := core.WriteThrough
	// Only fully-memoizable chains demote to disk (the tier's content
	// keys cannot capture a property that refused memoization), so the
	// 100%-recovery schedule needs a world whose every chain opted in:
	// all universal transforms carry a memo id and no user attached a
	// personal transform (the catalog's personal transforms never
	// opt in).
	memoizableWorld := func(w *World) bool {
		for _, id := range w.model.order {
			d := w.model.docs[id]
			for _, p := range d.universal {
				if p.memo == "" {
					return false
				}
			}
			for _, u := range d.users {
				if len(d.personal[u]) > 0 {
					return false
				}
			}
		}
		return true
	}
	var w *World
	// Deterministically find a seed whose world has ≥ 2 documents (one
	// to mutate while down, the rest untouched) and demotes everything.
	for seed := int64(1); ; seed++ {
		w = scheduleWorld(t, seed, func(c *Config) { c.Durable = &on; c.Mode = &wt })
		if len(w.model.order) >= 2 && memoizableWorld(w) {
			break
		}
	}

	read := func(doc, user string) ([]byte, core.EntryInfo) {
		t.Helper()
		t0 := w.clk.Now()
		var data []byte
		var info core.EntryInfo
		if err := w.guarded("read", func() error {
			var e error
			data, info, e = w.cache.ReadWithInfo(doc, user)
			return e
		}); err != nil {
			t.Fatalf("read %s/%s: %v", doc, user, err)
		}
		w.endOp()
		if err := w.checkLocal(doc, user, data, t0); err != nil {
			t.Fatal(err)
		}
		return data, info
	}

	// Write one document through the system (bumping its epoch and
	// invalidating its entries), then warm every (doc, user) pair so
	// each is freshly demoted at its current generation.
	if err := w.doWrite(w.model.order[0]); err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, id := range w.model.order {
		for _, u := range w.model.docs[id].users {
			read(id, u)
			pairs++
		}
	}
	if d := w.cache.Stats().StoreDemotions; d == 0 {
		t.Fatal("warm phase demoted nothing to the disk tier")
	}

	// Crash. The successor recovers from the same store directory.
	if err := w.guarded("restart", func() error { return w.restartDurable(true) }); err != nil {
		t.Fatal(err)
	}

	// Rewrite one document's backing bits out-of-band. No process was
	// up to see it, so no epoch records it: only the content-key probe
	// at promotion time stands between the disk copy and a stale serve.
	// (Promotion is lazy — mutating now, before any read, is
	// indistinguishable from mutating while down.)
	mutated := w.model.order[1]
	if err := w.doUpdateDirect(mutated); err != nil {
		t.Fatal(err)
	}

	promoted, untouched := 0, 0
	for _, id := range w.model.order {
		for _, u := range w.model.docs[id].users {
			data, info := read(id, u)
			want, ok := w.model.current(id, u)
			if !ok {
				t.Fatalf("model state for %s/%s ambiguous in a settled write-through world", id, u)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("post-restart read %s/%s = %q, model says %q", id, u, truncate(data), truncate(want))
			}
			if id == mutated {
				if info.DiskPromoted {
					t.Fatalf("%s/%s: entry for the out-of-band-rewritten document promoted from disk", id, u)
				}
				continue
			}
			untouched++
			if info.DiskPromoted {
				promoted++
			}
		}
	}
	if untouched == 0 {
		t.Fatal("no untouched pairs to measure recovery on")
	}
	if promoted*10 < untouched*9 {
		t.Fatalf("recovered %d/%d untouched entries from disk, want ≥90%%", promoted, untouched)
	}
	if st := w.cache.Stats(); st.StorePromotions != int64(promoted) {
		t.Fatalf("StorePromotions = %d, counted %d disk verdicts", st.StorePromotions, promoted)
	}

	// The recovered entries are real cache entries: the next pass hits.
	for _, id := range w.model.order {
		for _, u := range w.model.docs[id].users {
			if _, info := read(id, u); !info.Hit {
				t.Fatalf("%s/%s: second post-restart read not a hit", id, u)
			}
		}
	}
}

// TestScheduleHandshakeDowngrade pins the version-negotiation
// downgrade: an auto-negotiating client dialing a v1-only server (a
// pre-v2 binary) must land on the gob framing and then survive the
// full random schedule — lossy wire, broken connections, partitions —
// without a single oracle violation, renegotiating (and re-downgrading)
// on every reconnect.
func TestScheduleHandshakeDowngrade(t *testing.T) {
	remoteOn, legacy := true, true
	auto := server.ProtoAuto
	w := scheduleWorld(t, 77, func(c *Config) {
		c.Remote = &remoteOn
		c.LegacyServer = &legacy
		c.Proto = &auto
		c.Ops = 250
	})
	if got := w.client.ProtocolVersion(); got != 1 {
		t.Fatalf("ProtocolVersion = %d, want 1 (downgrade against legacy server)", got)
	}

	// A connection break forces a fresh dial — and with it a fresh
	// handshake against the still-legacy server — before the random
	// schedule takes over.
	if err := w.doBreakConns(); err != nil {
		t.Fatal(err)
	}
	if err := w.doSettle(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < w.cfg.Ops; i++ {
		if err := w.step(i); err != nil {
			t.Fatal(err)
		}
	}
	w.opIdx = w.cfg.Ops
	if err := w.finalCheck(); err != nil {
		t.Fatal(err)
	}
	if got := w.client.ProtocolVersion(); got != 1 {
		t.Fatalf("ProtocolVersion = %d after reconnects, want 1", got)
	}
	if got := w.client.Reconnects(); got < 1 {
		t.Fatalf("Reconnects = %d, want >= 1 (BreakConns never forced a re-handshake)", got)
	}
}

// TestScheduleKillDuringRebalance pins the cluster's hardest window:
// a node dies, a new node joins while it is down (ownership moves mid-
// death), and a write lands mid-rebalance. Every read through the
// router — during the window and after the random schedule takes over
// — must stay byte-legal under the per-node staleness oracle, and the
// final state must converge on every node.
func TestScheduleKillDuringRebalance(t *testing.T) {
	on := true
	wt := core.WriteThrough
	three := 3
	w := scheduleWorld(t, 31, func(c *Config) {
		c.Remote = &on
		c.Mode = &wt
		c.Cluster = &three
		c.Ops = 200
	})
	w.net.SetFaults(0, 0, 0, 0)
	if err := w.doSettle(); err != nil {
		t.Fatal(err)
	}

	// Warm every key through the router so the owners' caches hold
	// copies a stale-serving bug could expose.
	forEachKey := func(fn func(doc, user string)) {
		for _, id := range w.model.order {
			for _, u := range w.model.docs[id].users {
				fn(id, u)
			}
		}
	}
	forEachKey(func(doc, user string) {
		if err := w.doClusterRead(doc, user); err != nil {
			t.Fatal(err)
		}
	})

	// Kill the primary owner of the first key, so at least that key's
	// reads must cope with a dead primary.
	doc0 := w.model.order[0]
	user0 := w.model.docs[doc0].users[0]
	victim := w.cl.Owners(doc0, user0)[0]
	w.tr.add(w.opIdx, w.clk.Now(), "cluster-kill", victim)
	w.net.BreakConnsTo("srv-" + victim)

	// Join a fresh node while the victim is down: ownership moves
	// during the outage.
	if err := w.guarded("cluster-join", func() error { return w.addClusterNode() }); err != nil {
		t.Fatalf("join on a clean wire must succeed: %v", err)
	}

	// A write lands mid-rebalance; its invalidations must reach every
	// replica that matters (or be covered by the suspect window).
	if err := w.doWrite(doc0); err != nil {
		t.Fatal(err)
	}

	// Every key must still read legally through the router, dead
	// primary and half-moved ring notwithstanding.
	forEachKey(func(doc, user string) {
		if err := w.doClusterRead(doc, user); err != nil {
			t.Fatal(err)
		}
	})

	// Then the random schedule takes over (more kills, joins, leaves,
	// faults), and the lost-write detector closes the run.
	for i := 0; i < w.cfg.Ops; i++ {
		if err := w.step(i); err != nil {
			t.Fatal(err)
		}
	}
	w.opIdx = w.cfg.Ops
	if err := w.finalCheck(); err != nil {
		t.Fatal(err)
	}
	if reb := w.cl.Stats().Rebalances; reb < 4 {
		t.Fatalf("Rebalances = %d, want ≥ 4 (3 boot joins + the scripted join)", reb)
	}
}

// TestScheduleFlashCrowdCluster pins the flash-crowd window: a write
// invalidates one hot key everywhere, then a burst of concurrent reads
// — the E18 spike, ~100x a key's normal concurrency — slams that key
// through the router. Every served byte must stay legal under the
// per-node staleness oracle, and the single-flight hold must absorb
// the crowd: the origin may run the document's transform chain at most
// once per non-coalesced miss, not once per reader.
func TestScheduleFlashCrowdCluster(t *testing.T) {
	on := true
	wt := core.WriteThrough
	three := 3
	// Find a seed whose router-warmed key actually caches on a node
	// (cacheability is seed-derived): the spike needs node copies for
	// the write to invalidate.
	var (
		w            *World
		doc0, user0  string
	)
	liveStats := func() (hits, coalesced int64) {
		for _, n := range w.clNodes {
			if !n.closed {
				st := n.rc.Stats()
				hits += st.Hits
				coalesced += st.CoalescedMisses
			}
		}
		return
	}
seeds:
	for seed := int64(1); ; seed++ {
		w = scheduleWorld(t, seed, func(c *Config) {
			c.Remote = &on
			c.Mode = &wt
			c.Cluster = &three
			c.Ops = 150
		})
		w.net.SetFaults(0, 0, 0, 0)
		if err := w.doSettle(); err != nil {
			t.Fatal(err)
		}
		for _, id := range w.model.order {
			u := w.model.docs[id].users[0]
			// Warm, then re-read: a node hit proves the key caches.
			err := w.guarded("warm-read", func() error {
				if _, _, e := w.cl.ReadVia(id, u); e != nil {
					return e
				}
				_, _, e := w.cl.ReadVia(id, u)
				return e
			})
			if err != nil {
				t.Fatal(err)
			}
			if h, _ := liveStats(); h > 0 {
				doc0, user0 = id, u
				break seeds
			}
		}
	}

	// A pass-through counting transform on the hot document: it leaves
	// the bytes alone (so the model needs no registration) but counts
	// every origin execution of the chain — the recompute cost the
	// coalescing hold is supposed to bound. The real-time sleep holds
	// each origin execution open long enough for the rest of the crowd
	// to genuinely overlap the leader's flight; virtual cost cannot do
	// that (the virtual clock advances under blocked readers, so a
	// virtual-cost chain completes before the scheduler runs anyone
	// else, serializing the burst into hits).
	var runs atomic.Int64
	count := &property.Transformer{
		Base: property.Base{PropName: "flash-count"},
		ReadTransform: func(b []byte) []byte {
			runs.Add(1)
			time.Sleep(5 * time.Millisecond)
			return b
		},
		Version: 1,
	}
	if err := w.space.Attach(doc0, "", docspace.Universal, count); err != nil {
		t.Fatal(err)
	}
	// Re-warm through the router (the attach invalidated the key
	// everywhere) and drain its invalidation pushes, so the burst below
	// starts from a settled, cached state.
	if err := w.doClusterRead(doc0, user0); err != nil {
		t.Fatal(err)
	}
	if err := w.doSettle(); err != nil {
		t.Fatal(err)
	}
	baseRuns := runs.Load()
	baseHits, baseCoalesced := liveStats()

	// The spike: a write lands on the hot document, and its
	// invalidation pushes are drained so the burst provably starts
	// against an invalidated key (undrained, part of the crowd can
	// legally hit the pre-write entry and dodge the flight).
	if err := w.doWrite(doc0); err != nil {
		t.Fatal(err)
	}
	if err := w.doSettle(); err != nil {
		t.Fatal(err)
	}
	// A flash crowd of concurrent readers hits the invalidated key
	// through the router, inside one guarded call so the virtual clock
	// advances under all of them together.
	const K = 48
	var (
		data [K][]byte
		via  [K]string
		errs [K]error
	)
	if err := w.guarded("flash-crowd", func() error {
		var wg sync.WaitGroup
		for i := 0; i < K; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				data[i], via[i], errs[i] = w.cl.ReadVia(doc0, user0)
			}(i)
		}
		wg.Wait()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	w.endOp()

	// Zero oracle violations: every served byte is held to the serving
	// node's causal staleness bound. (A read may legally lose its
	// real-time call deadline under -race; those count as unserved.)
	served := 0
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			if errors.Is(errs[i], remote.ErrDegraded) ||
				errors.Is(errs[i], server.ErrDisconnected) ||
				errors.Is(errs[i], server.ErrTimeout) {
				continue
			}
			t.Fatalf("flash read %d failed: %v", i, errs[i])
		}
		served++
		if cerr := w.checkRemoteAt(via[i], doc0, user0, data[i]); cerr != nil {
			t.Fatal(cerr)
		}
	}
	if served < K/2 {
		t.Fatalf("only %d/%d flash reads served on a clean wire", served, K)
	}

	runsDelta := runs.Load() - baseRuns
	hits, coalesced := liveStats()
	hitsDelta, coalescedDelta := hits-baseHits, coalesced-baseCoalesced
	if runsDelta < 1 {
		t.Fatal("the write invalidated nothing: zero transform runs during the spike")
	}
	// The hold: each served read is exactly one of node-hit, coalesced
	// join, or leader miss, and only leader misses can reach the origin
	// — so transform runs are bounded by the non-absorbed remainder.
	if absorbed := hitsDelta + coalescedDelta; runsDelta > int64(served)-absorbed {
		t.Fatalf("origin ran the chain %d times but only %d of %d reads escaped the hold (hits=%d coalesced=%d)",
			runsDelta, int64(served)-absorbed, served, hitsDelta, coalescedDelta)
	}
	if runsDelta > K/8 {
		t.Fatalf("flash crowd leaked %d origin transform runs for %d concurrent readers", runsDelta, K)
	}
	if coalescedDelta < 1 {
		t.Fatalf("no reads coalesced during a %d-wide burst on one key", K)
	}

	// The random schedule takes over, and the lost-write detector
	// closes the run: the spike must leave no latent staleness behind.
	for i := 0; i < w.cfg.Ops; i++ {
		if err := w.step(i); err != nil {
			t.Fatal(err)
		}
	}
	w.opIdx = w.cfg.Ops
	if err := w.finalCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleMixedProtocolSweep runs a fixed batch of seeds with the
// protocol pinned to each codec in turn: every fault schedule passes
// its oracle over both the gob framing and the v2 binary framing.
func TestScheduleMixedProtocolSweep(t *testing.T) {
	remoteOn := true
	for _, proto := range []int{server.ProtoV1, server.ProtoAuto} {
		proto := proto
		for seed := int64(101); seed <= 104; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("proto%d-seed%d", proto, seed), func(t *testing.T) {
				t.Parallel()
				p := proto
				if err := RunSeed(Config{Seed: seed, Ops: 250, Remote: &remoteOn, Proto: &p}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
