package sim

import (
	"fmt"
	"os"
	"strings"
	"time"
)

// traceEvent is one executed (or attempted) operation in a run.
type traceEvent struct {
	idx    int
	at     time.Time // virtual time at the start of the op
	op     string
	detail string
}

// trace is the append-only event log of one seeded run. On failure it
// is dumped next to the test binary so the schedule that provoked the
// bug survives the process.
type trace struct {
	events []traceEvent
}

func (tr *trace) add(idx int, at time.Time, op, detail string) {
	tr.events = append(tr.events, traceEvent{idx: idx, at: at, op: op, detail: detail})
}

// note annotates the most recent event with its outcome.
func (tr *trace) note(format string, args ...interface{}) {
	if len(tr.events) == 0 {
		return
	}
	e := &tr.events[len(tr.events)-1]
	if e.detail != "" {
		e.detail += " "
	}
	e.detail += fmt.Sprintf(format, args...)
}

func (tr *trace) String() string {
	var b strings.Builder
	for _, e := range tr.events {
		fmt.Fprintf(&b, "%5d  %s  %-14s %s\n",
			e.idx, e.at.Format("15:04:05.000000"), e.op, e.detail)
	}
	return b.String()
}

// dumpFailure writes the full event trace plus repro instructions to
// sim-failure-seed<N>.txt in the current directory (the package dir
// under `go test`; CI uploads these as artifacts) and returns an error
// that names the seed, the repro command, and the file.
func dumpFailure(cfg Config, tr *trace, cause error) error {
	name := fmt.Sprintf("sim-failure-seed%d.txt", cfg.Seed)
	repro := fmt.Sprintf("go test -race -run 'TestSimSeed' -v ./internal/sim -args -sim.seed=%d -sim.ops=%d", cfg.Seed, cfg.Ops)
	var b strings.Builder
	fmt.Fprintf(&b, "simulation failure, seed %d (%d ops)\n", cfg.Seed, cfg.Ops)
	fmt.Fprintf(&b, "reproduce with:\n  %s\n\n", repro)
	fmt.Fprintf(&b, "cause:\n  %v\n\nevent trace (op#, virtual time, op, detail):\n", cause)
	b.WriteString(tr.String())
	if werr := os.WriteFile(name, []byte(b.String()), 0o644); werr != nil {
		return fmt.Errorf("seed %d: %w (trace dump failed: %v; repro: %s)", cfg.Seed, cause, werr, repro)
	}
	return fmt.Errorf("seed %d: %w\n  trace: %s\n  repro: %s", cfg.Seed, cause, name, repro)
}
