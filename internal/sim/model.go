// Package sim is a deterministic whole-stack simulation harness for
// the Placeless caching system. One seeded run builds the full stack —
// document space, core cache (either write mode, memoization on or
// off), TCP server, resilient client, and remote cache — on a virtual
// clock and a fault-injecting in-process network, drives it with a
// pseudo-random workload schedule, and checks every simulated read
// against a sequential reference model of
//
//	transform-chain(user)(bits)
//
// A read is legal only if the bytes it returned correspond to a model
// state that was legal at some instant of the read; stale reads, lost
// writes, and deadlocks (detected as virtual-clock stalls) fail the
// run and dump a replayable event trace keyed by the seed.
package sim

import (
	"bytes"
	"fmt"
	"sort"
	"time"
)

// farFuture stands in for "still current" when comparing intervals.
var farFuture = time.Date(3000, 1, 1, 0, 0, 0, 0, time.UTC)

// version is one (doc, user) view the model has seen. A zero `to`
// means the version is still open (possibly current). Several versions
// of one key may be open at once when the harness cannot know which
// side of a race the real system landed on (e.g. a periodic write-back
// flush racing a buffer overwrite): the legal-state set then contains
// every open version until a definite transition closes them.
type version struct {
	seq  uint64
	data []byte
	from time.Time
	to   time.Time
}

func (v *version) open() bool { return v.to.IsZero() }

// chainProp mirrors one attached read-path transformer: its docspace
// name, release version, and the pure byte transform it applies.
type chainProp struct {
	name    string
	version int
	fn      func([]byte) []byte
	// kind and memo carry the workload generator's catalog bookkeeping
	// so Replace can re-derive the same transform family at the next
	// version.
	kind int
	memo string
}

// modelDoc is the reference state of one document.
type modelDoc struct {
	id    string
	users []string // users[0] is the owner and the only writer

	// sources is the set of byte strings that may currently be stored
	// in the backing repository. Usually one; a write-back buffer
	// overwrite racing a timer flush makes the outcome ambiguous and
	// temporarily widens the set.
	sources [][]byte
	// buffered is write-back content not yet flushed (nil = clean).
	buffered []byte

	universal []chainProp
	personal  map[string][]chainProp
}

// model is the sequential reference implementation plus the legality
// oracle.
type model struct {
	seq     uint64
	docs    map[string]*modelDoc
	order   []string
	history map[string][]version // key(doc,user) → versions
	// minLegal holds each remote node's causal lower bound per key
	// (nkey(node, mkey(doc,user)) → lowest legal seq). The bound is per
	// node: each replica's cache advances independently, so after a
	// failover a different replica may legally serve bytes older than
	// what the previous one observed — a single global ratchet would
	// falsely flag that legal read. Cross-replica read monotonicity is
	// explicitly NOT promised (DESIGN.md §13); within one node it is.
	minLegal map[string]uint64
	// remoteNodes is the registered node set; settleKey tightens every
	// node's bound. The base (non-cluster) remote cache is node "rc".
	remoteNodes map[string]struct{}
}

func mkey(doc, user string) string { return doc + "\x00" + user }

// nkey scopes a model key to one remote node's causal bound.
func nkey(node, k string) string { return node + "\x01" + k }

func newModel() *model {
	return &model{
		docs:        make(map[string]*modelDoc),
		history:     make(map[string][]version),
		minLegal:    make(map[string]uint64),
		remoteNodes: map[string]struct{}{"rc": {}},
	}
}

// addRemoteNode registers a remote node so settleKey tightens its
// causal bounds too. A node keeps its bounds (and registration) for
// the whole run even if it later leaves the ring: its cache object
// survives until the leave, and bounds only ever constrain reads that
// actually went through it.
func (m *model) addRemoteNode(node string) {
	m.remoteNodes[node] = struct{}{}
}

// addDoc registers a document with its initial repository content and
// user set, opening the first version of every user's view at `at`.
func (m *model) addDoc(id string, users []string, content []byte, at time.Time) {
	d := &modelDoc{
		id:       id,
		users:    append([]string{}, users...),
		sources:  [][]byte{append([]byte{}, content...)},
		personal: make(map[string][]chainProp),
	}
	m.docs[id] = d
	m.order = append(m.order, id)
	m.syncOpens(id, users, at, at)
}

// render applies the user's transform chain (universal prefix, then
// personal suffix — the read-path order) to one candidate source.
func (d *modelDoc) render(src []byte, user string) []byte {
	out := append([]byte{}, src...)
	for _, p := range d.universal {
		out = p.fn(out)
	}
	for _, p := range d.personal[user] {
		out = p.fn(out)
	}
	return out
}

// syncOpens recomputes the legal-state set for the given users of doc:
// the renders of every possible source. Open versions whose bytes are
// no longer renderable are closed at hi (they may have been legal up
// to that instant); renders with no open version get a fresh one
// starting at lo. lo ≤ hi bound when the transition really happened.
func (m *model) syncOpens(doc string, users []string, lo, hi time.Time) {
	d := m.docs[doc]
	for _, user := range users {
		var datas [][]byte
		for _, src := range d.sources {
			r := d.render(src, user)
			dup := false
			for _, e := range datas {
				if bytes.Equal(e, r) {
					dup = true
					break
				}
			}
			if !dup {
				datas = append(datas, r)
			}
		}
		m.setOpens(mkey(doc, user), datas, lo, hi)
	}
}

// setOpens reconciles the open-version set of one key with datas.
func (m *model) setOpens(k string, datas [][]byte, lo, hi time.Time) {
	h := m.history[k]
	inDatas := func(b []byte) bool {
		for _, d := range datas {
			if bytes.Equal(d, b) {
				return true
			}
		}
		return false
	}
	for i := range h {
		if h[i].open() && !inDatas(h[i].data) {
			h[i].to = hi
		}
	}
	for _, data := range datas {
		found := false
		for i := range h {
			if h[i].open() && bytes.Equal(h[i].data, data) {
				found = true
				break
			}
		}
		if !found {
			m.seq++
			h = append(h, version{seq: m.seq, data: append([]byte{}, data...), from: lo})
		}
	}
	m.history[k] = h
}

// applyWrite records a definite write-through store: the repository
// now holds exactly data.
func (m *model) applyWrite(doc string, data []byte, lo, hi time.Time) {
	d := m.docs[doc]
	d.sources = [][]byte{append([]byte{}, data...)}
	m.syncOpens(doc, d.users, lo, hi)
}

// bufferWrite records a write-back Write: content is buffered, the
// repository is untouched. timerArmed tells the model whether a
// periodic flush can race the buffer: overwriting a still-dirty buffer
// then leaves the old data possibly-flushed, so it joins the source
// set until the next definite flush resolves the ambiguity.
func (m *model) bufferWrite(doc string, data []byte, timerArmed bool, lo, hi time.Time) {
	d := m.docs[doc]
	if d.buffered != nil && timerArmed {
		dup := false
		for _, s := range d.sources {
			if bytes.Equal(s, d.buffered) {
				dup = true
				break
			}
		}
		if !dup {
			d.sources = append(d.sources, d.buffered)
			m.syncOpens(doc, d.users, lo, hi)
		}
	}
	d.buffered = append([]byte{}, data...)
}

// applyFlush records that the buffered write-back content definitely
// reached the repository somewhere in [lo, hi].
func (m *model) applyFlush(doc string, lo, hi time.Time) {
	d := m.docs[doc]
	if d.buffered == nil {
		return
	}
	d.sources = [][]byte{d.buffered}
	d.buffered = nil
	m.syncOpens(doc, d.users, lo, hi)
}

// dirty reports whether the model expects buffered write-back content.
func (m *model) dirty(doc string) bool { return m.docs[doc].buffered != nil }

// legalLocal reports whether a strongly-consistent (in-process) read
// of (doc, user) spanning [t0, t1] of virtual time may legally have
// returned got: some version with matching bytes must have been live
// during the read. want describes the expected state for diagnostics.
func (m *model) legalLocal(doc, user string, got []byte, t0, t1 time.Time) (bool, string) {
	k := mkey(doc, user)
	for i := range m.history[k] {
		v := &m.history[k][i]
		to := v.to
		if to.IsZero() {
			to = farFuture
		}
		if !v.from.After(t1) && !to.Before(t0) && bytes.Equal(v.data, got) {
			return true, ""
		}
	}
	return false, m.describe(k, t0, t1)
}

// legalRemote reports whether a push-invalidated read through the base
// remote cache (node "rc") may legally have returned got.
func (m *model) legalRemote(doc, user string, got []byte) (bool, string) {
	return m.legalRemoteAt("rc", doc, user, got)
}

// legalRemoteAt reports whether a push-invalidated remote read served
// by node may legally have returned got. Remote staleness is bounded
// by causality, not by intervals: a node's cache may serve any version
// at least as new as the newest one that node has provably observed
// (its minLegal bound), which advances monotonically — per key and per
// node, a remote reader never travels back in time. On a match the
// node's bound tightens to the version observed.
func (m *model) legalRemoteAt(node, doc, user string, got []byte) (bool, string) {
	k := mkey(doc, user)
	nk := nkey(node, k)
	min := m.minLegal[nk]
	for i := range m.history[k] {
		v := &m.history[k][i]
		if v.seq < min {
			continue
		}
		if bytes.Equal(v.data, got) {
			m.minLegal[nk] = v.seq
			return true, ""
		}
	}
	return false, m.describe(k, time.Time{}, time.Time{})
}

// settleKey records that every registered remote node has provably
// caught up on this key (pushes drained, connections up, suspect
// windows closed): all versions older than the current legal-state set
// become illegal on every node. With several versions still open
// (unresolved flush race) the bound stops at the oldest open one.
func (m *model) settleKey(doc, user string) {
	k := mkey(doc, user)
	min := uint64(0)
	for i := range m.history[k] {
		v := &m.history[k][i]
		if v.open() && (min == 0 || v.seq < min) {
			min = v.seq
		}
	}
	for node := range m.remoteNodes {
		nk := nkey(node, k)
		if min > m.minLegal[nk] {
			m.minLegal[nk] = min
		}
	}
}

// current returns the single open version's bytes, or ok=false while
// the legal-state set is ambiguous.
func (m *model) current(doc, user string) ([]byte, bool) {
	k := mkey(doc, user)
	var cur []byte
	n := 0
	for i := range m.history[k] {
		if m.history[k][i].open() {
			cur = m.history[k][i].data
			n++
		}
	}
	return cur, n == 1
}

// describe summarizes a key's version history for failure reports.
func (m *model) describe(k string, t0, t1 time.Time) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "history of %q", k)
	if !t0.IsZero() {
		fmt.Fprintf(&b, " (read interval [%s, %s])", t0.Format("15:04:05.000000"), t1.Format("15:04:05.000000"))
	}
	for i := range m.history[k] {
		v := &m.history[k][i]
		to := "open"
		if !v.open() {
			to = v.to.Format("15:04:05.000000")
		}
		fmt.Fprintf(&b, "\n    seq=%d from=%s to=%s data=%q",
			v.seq, v.from.Format("15:04:05.000000"), to, truncate(v.data))
	}
	nodes := make([]string, 0, len(m.remoteNodes))
	for n := range m.remoteNodes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Fprintf(&b, "\n    minLegalSeq[%s]=%d", n, m.minLegal[nkey(n, k)])
	}
	return b.String()
}

func truncate(b []byte) string {
	const max = 48
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + fmt.Sprintf("…(%d bytes)", len(b))
}
