package sim

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"placeless/internal/cluster"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/remote"
	"placeless/internal/server"
	"placeless/internal/stream"
)

// step executes the i-th pseudo-random workload operation. Weights
// skew toward reads (the paper's workload), with a steady trickle of
// writes, property churn, time advancement, and — when the remote
// stack is up — wire faults and recovery.
func (w *World) step(i int) error {
	w.opIdx = i
	doc := w.model.order[w.rng.Intn(len(w.model.order))]
	d := w.model.docs[doc]
	user := d.users[w.rng.Intn(len(d.users))]
	r := w.rng.Float64()
	switch {
	case r < 0.26:
		return w.doLocalRead(doc, user)
	case r < 0.38:
		if w.clusterOn && w.rng.Intn(2) == 1 {
			return w.doClusterRead(doc, user)
		}
		if w.remoteOn {
			return w.doRemoteRead(doc, user)
		}
		return w.doLocalRead(doc, user)
	case r < 0.50:
		return w.doWrite(doc)
	case r < 0.54:
		if w.mode == core.WriteBack {
			return w.doFlush()
		}
		return w.doLocalRead(doc, user)
	case r < 0.58:
		return w.doAttach(doc, user)
	case r < 0.61:
		return w.doDetach()
	case r < 0.64:
		return w.doReplace()
	case r < 0.67:
		return w.doReorder()
	case r < 0.70:
		return w.doExternalChange(doc)
	case r < 0.74:
		if !w.remoteOn {
			return w.doUpdateDirect(doc)
		}
		if w.clusterOn {
			return w.doClusterMembership()
		}
		return w.doLocalRead(doc, user)
	case r < 0.84:
		return w.doAdvance(time.Duration(1+w.rng.Intn(40)) * time.Millisecond)
	case r < 0.87:
		if w.remoteOn {
			return w.doFaults()
		}
		return w.doAdvance(time.Duration(1+w.rng.Intn(10)) * time.Millisecond)
	case r < 0.90:
		if w.clusterOn && w.rng.Intn(2) == 1 {
			return w.doClusterKillNode()
		}
		if w.remoteOn {
			return w.doBreakConns()
		}
		if w.durable {
			// The local-only analogue of a connection kill: the cache
			// process dies and a successor recovers from the disk tier.
			return w.doRestart()
		}
		return w.doLocalRead(doc, user)
	case r < 0.92:
		if w.remoteOn {
			return w.doPartition()
		}
		return w.doLocalRead(doc, user)
	case r < 0.96:
		if w.remoteOn {
			return w.doHeal()
		}
		return w.doAdvance(time.Duration(1+w.rng.Intn(10)) * time.Millisecond)
	default:
		if w.remoteOn {
			return w.doSettle()
		}
		return w.doAdvance(time.Duration(1+w.rng.Intn(10)) * time.Millisecond)
	}
}

// doLocalRead reads through the in-process core cache and checks the
// result against the interval oracle: the bytes must match a model
// state live at some instant of the read.
func (w *World) doLocalRead(doc, user string) error {
	t0 := w.clk.Now()
	w.tr.add(w.opIdx, t0, "local-read", doc+"/"+user)
	var data []byte
	err := w.guarded("local-read", func() error {
		var e error
		data, e = w.cache.Read(doc, user)
		return e
	})
	if err != nil {
		return fmt.Errorf("local read %s/%s failed: %w", doc, user, err)
	}
	w.endOp()
	if cerr := w.checkLocal(doc, user, data, t0); cerr != nil {
		return cerr
	}
	w.tr.note("→ %q", truncate(data))
	return nil
}

// doRemoteRead reads through the remote cache over the faulty wire.
// Degraded-mode refusals and wire timeouts are legal availability
// outcomes; returned bytes are held to the causal staleness bound.
func (w *World) doRemoteRead(doc, user string) error {
	t0 := w.clk.Now()
	w.tr.add(w.opIdx, t0, "remote-read", doc+"/"+user)
	var data []byte
	err := w.guarded("remote-read", func() error {
		var e error
		data, e = w.rc.Read(doc, user)
		return e
	})
	w.endOp()
	if err != nil {
		if errors.Is(err, remote.ErrDegraded) ||
			errors.Is(err, server.ErrDisconnected) ||
			errors.Is(err, server.ErrTimeout) {
			w.tr.note("→ unavailable (%v)", err)
			return nil
		}
		return fmt.Errorf("remote read %s/%s failed: %w", doc, user, err)
	}
	if cerr := w.checkRemote(doc, user, data); cerr != nil {
		return cerr
	}
	w.tr.note("→ %q", truncate(data))
	return nil
}

// doClusterRead reads through the consistent-hash router, which picks
// the key's owner set and fails over past degraded replicas. The bytes
// are held to the causal staleness bound of the node that actually
// served them — each replica's cache advances independently, so the
// oracle tracks a bound per node (DESIGN.md §13).
func (w *World) doClusterRead(doc, user string) error {
	t0 := w.clk.Now()
	w.tr.add(w.opIdx, t0, "cluster-read", doc+"/"+user)
	var data []byte
	var via string
	err := w.guarded("cluster-read", func() error {
		var e error
		data, via, e = w.cl.ReadVia(doc, user)
		return e
	})
	w.endOp()
	if err != nil {
		if errors.Is(err, remote.ErrDegraded) ||
			errors.Is(err, remote.ErrClosed) ||
			errors.Is(err, server.ErrDisconnected) ||
			errors.Is(err, server.ErrTimeout) ||
			errors.Is(err, cluster.ErrNoNodes) {
			w.tr.note("→ unavailable (%v)", err)
			return nil
		}
		return fmt.Errorf("cluster read %s/%s failed: %w", doc, user, err)
	}
	if cerr := w.checkRemoteAt(via, doc, user, data); cerr != nil {
		return cerr
	}
	w.tr.note("→ %q via %s", truncate(data), via)
	return nil
}

// doClusterKillNode severs one node's connections — the single-node
// analogue of doBreakConns. The node's client reconnects on its own;
// until then reads fail over to its replicas.
func (w *World) doClusterKillNode() error {
	var live []*clusterNode
	for _, n := range w.clNodes {
		if !n.closed {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return w.doAdvance(time.Millisecond)
	}
	n := live[w.rng.Intn(len(live))]
	w.tr.add(w.opIdx, w.clk.Now(), "cluster-kill", n.name)
	w.net.BreakConnsTo("srv-" + n.name)
	return nil
}

// doClusterMembership joins a fresh node to the ring or retires one —
// the rebalance paths. The ring keeps at least one member and at most
// five; a leave closes the departed node's cache and connection (its
// oracle bounds remain: they only constrain reads it already served).
func (w *World) doClusterMembership() error {
	var live []*clusterNode
	for _, n := range w.clNodes {
		if !n.closed {
			live = append(live, n)
		}
	}
	join := len(live) <= 1 || (len(live) < 5 && w.rng.Intn(2) == 1)
	if join {
		w.tr.add(w.opIdx, w.clk.Now(), "cluster-join", fmt.Sprintf("n%d", w.clSeq))
		err := w.guarded("cluster-join", func() error { return w.addClusterNode() })
		if err != nil {
			// The wire may be down or faulty: a node that cannot reach
			// the origin never finishes booting — a legal non-event.
			w.tr.note("aborted (%v)", err)
			return nil
		}
		w.endOp()
		return nil
	}
	n := live[w.rng.Intn(len(live))]
	w.tr.add(w.opIdx, w.clk.Now(), "cluster-leave", n.name)
	w.cl.RemoveNode(n.name)
	n.rc.Close()
	_ = n.client.Close()
	n.closed = true
	w.endOp()
	return nil
}

// doWrite issues the document's designated writer (its owner) a new
// content version through the core cache — stored immediately in
// write-through mode, buffered (and possibly overflow-flushed) in
// write-back mode.
func (w *World) doWrite(doc string) error {
	d := w.model.docs[doc]
	user := d.users[0]
	w.writeSeq++
	data := []byte(fmt.Sprintf("w%05d:%s:%08x", w.writeSeq, doc, w.rng.Int63()))
	t0 := w.clk.Now()
	w.tr.add(w.opIdx, t0, "write", fmt.Sprintf("%s/%s %q", doc, user, data))
	err := w.guarded("write", func() error { return w.cache.Write(doc, user, data) })
	if err != nil {
		return fmt.Errorf("write %s/%s failed: %w", doc, user, err)
	}
	if w.mode == core.WriteBack {
		// Buffered; the repository is untouched until a flush, which
		// endOp's reconciliation will detect (including the synchronous
		// MaxDirty overflow flush inside Write itself).
		w.model.bufferWrite(doc, data, w.flushEvery > 0, w.lastCheck, w.clk.Now())
		w.endOp()
		return nil
	}
	w.clk.Advance(opEpsilon)
	w.model.applyWrite(doc, data, t0, w.clk.Now())
	w.reconcile()
	return nil
}

// doFlush pushes all buffered write-back content through the write
// path; reconciliation maps the cleared dirty entries onto the model.
func (w *World) doFlush() error {
	t0 := w.clk.Now()
	w.tr.add(w.opIdx, t0, "flush", "")
	if err := w.guarded("flush", func() error { return w.cache.Flush() }); err != nil {
		return fmt.Errorf("flush failed: %w", err)
	}
	w.endOp()
	return nil
}

// doAdvance moves virtual time forward, firing any due timers
// (periodic flushes, delayed message deliveries).
func (w *World) doAdvance(d time.Duration) error {
	w.tr.add(w.opIdx, w.clk.Now(), "advance", d.String())
	if err := w.guarded("advance", func() error { w.clk.Advance(d); return nil }); err != nil {
		return err
	}
	w.reconcile()
	return nil
}

// attachProp builds a fresh transformer from the catalog, attaches it
// at the given level, and mirrors it into the model. user is ignored
// for universal attachments.
func (w *World) attachProp(doc, user string, level docspace.Level) error {
	name := fmt.Sprintf("p%03d", w.propSeq)
	w.propSeq++
	kind := w.rng.Intn(3)
	fn := transformFn(kind, name, 1)
	vote := property.Unrestricted
	switch r := w.rng.Float64(); {
	case r > 0.95:
		vote = property.Uncacheable
	case r > 0.80:
		vote = property.CacheWithEvents
	}
	memo := ""
	if level == docspace.Universal && w.rng.Intn(10) < 7 {
		memo = fmt.Sprintf("%s-k%d", name, kind)
	}
	p := &property.Transformer{
		Base:          property.Base{PropName: name},
		ReadTransform: stream.Transform(fn),
		ExecCost:      time.Duration(w.rng.Intn(300)) * time.Microsecond,
		CacheVote:     vote,
		Version:       1,
		MemoID:        memo,
	}
	userArg, affected := "", w.model.docs[doc].users
	if level == docspace.Personal {
		userArg, affected = user, []string{user}
	}
	if err := w.space.Attach(doc, userArg, level, p); err != nil {
		return fmt.Errorf("attach %s at %s/%s: %w", name, doc, userArg, err)
	}
	cp := chainProp{name: name, version: 1, fn: fn}
	cp.kind, cp.memo = kind, memo
	d := w.model.docs[doc]
	if level == docspace.Universal {
		d.universal = append(d.universal, cp)
	} else {
		d.personal[user] = append(d.personal[user], cp)
	}
	now := w.clk.Now()
	w.model.syncOpens(doc, affected, now, now)
	return nil
}

func (w *World) doAttach(doc, user string) error {
	level := docspace.Universal
	if w.rng.Intn(2) == 1 {
		level = docspace.Personal
	}
	w.tr.add(w.opIdx, w.clk.Now(), "attach", fmt.Sprintf("%s/%s %v", doc, user, level))
	if err := w.attachProp(doc, user, level); err != nil {
		return err
	}
	w.tr.note("name=p%03d", w.propSeq-1)
	w.endOp()
	return nil
}

// chainSite addresses one mutable transform chain in the model.
type chainSite struct {
	doc   string
	user  string // "" for universal
	level docspace.Level
}

// chainAt returns the chain at a site.
func (w *World) chainAt(s chainSite) []chainProp {
	d := w.model.docs[s.doc]
	if s.level == docspace.Universal {
		return d.universal
	}
	return d.personal[s.user]
}

// setChainAt replaces the chain at a site.
func (w *World) setChainAt(s chainSite, c []chainProp) {
	d := w.model.docs[s.doc]
	if s.level == docspace.Universal {
		d.universal = c
	} else {
		d.personal[s.user] = c
	}
}

// sitesWithProps lists every chain currently holding at least min
// properties, in deterministic order.
func (w *World) sitesWithProps(min int) []chainSite {
	var out []chainSite
	for _, id := range w.model.order {
		d := w.model.docs[id]
		if len(d.universal) >= min {
			out = append(out, chainSite{doc: id, level: docspace.Universal})
		}
		for _, u := range d.users {
			if len(d.personal[u]) >= min {
				out = append(out, chainSite{doc: id, user: u, level: docspace.Personal})
			}
		}
	}
	return out
}

func (w *World) affectedUsers(s chainSite) []string {
	if s.level == docspace.Universal {
		return w.model.docs[s.doc].users
	}
	return []string{s.user}
}

func (w *World) doDetach() error {
	sites := w.sitesWithProps(1)
	if len(sites) == 0 {
		return w.doAdvance(time.Millisecond)
	}
	s := sites[w.rng.Intn(len(sites))]
	chain := w.chainAt(s)
	i := w.rng.Intn(len(chain))
	name := chain[i].name
	w.tr.add(w.opIdx, w.clk.Now(), "detach", fmt.Sprintf("%s/%s %v %s", s.doc, s.user, s.level, name))
	if err := w.space.Detach(s.doc, s.user, s.level, name); err != nil {
		return fmt.Errorf("detach %s: %w", name, err)
	}
	w.setChainAt(s, append(chain[:i:i], chain[i+1:]...))
	now := w.clk.Now()
	w.model.syncOpens(s.doc, w.affectedUsers(s), now, now)
	w.endOp()
	return nil
}

func (w *World) doReplace() error {
	sites := w.sitesWithProps(1)
	if len(sites) == 0 {
		return w.doAdvance(time.Millisecond)
	}
	s := sites[w.rng.Intn(len(sites))]
	chain := w.chainAt(s)
	i := w.rng.Intn(len(chain))
	old := chain[i]
	ver := old.version + 1
	fn := transformFn(old.kind, old.name, ver)
	w.tr.add(w.opIdx, w.clk.Now(), "replace", fmt.Sprintf("%s/%s %v %s → v%d", s.doc, s.user, s.level, old.name, ver))
	p := &property.Transformer{
		Base:          property.Base{PropName: old.name},
		ReadTransform: stream.Transform(fn),
		ExecCost:      time.Duration(w.rng.Intn(300)) * time.Microsecond,
		Version:       ver,
		MemoID:        old.memo,
	}
	if err := w.space.Replace(s.doc, s.user, s.level, old.name, p); err != nil {
		return fmt.Errorf("replace %s: %w", old.name, err)
	}
	chain[i] = chainProp{name: old.name, version: ver, fn: fn, kind: old.kind, memo: old.memo}
	now := w.clk.Now()
	w.model.syncOpens(s.doc, w.affectedUsers(s), now, now)
	w.endOp()
	return nil
}

func (w *World) doReorder() error {
	sites := w.sitesWithProps(2)
	if len(sites) == 0 {
		return w.doAdvance(time.Millisecond)
	}
	s := sites[w.rng.Intn(len(sites))]
	chain := w.chainAt(s)
	perm := w.rng.Perm(len(chain))
	names := make([]string, len(chain))
	next := make([]chainProp, len(chain))
	for i, j := range perm {
		names[i] = chain[j].name
		next[i] = chain[j]
	}
	w.tr.add(w.opIdx, w.clk.Now(), "reorder", fmt.Sprintf("%s/%s %v %v", s.doc, s.user, s.level, names))
	if err := w.space.Reorder(s.doc, s.user, s.level, names); err != nil {
		return fmt.Errorf("reorder %s: %w", s.doc, err)
	}
	w.setChainAt(s, next)
	now := w.clk.Now()
	w.model.syncOpens(s.doc, w.affectedUsers(s), now, now)
	w.endOp()
	return nil
}

// doExternalChange signals invalidation cause 4 (external information
// changed). None of the catalog transforms embed external state, so
// content is unaffected — the op exercises the invalidation machinery
// for free.
func (w *World) doExternalChange(doc string) error {
	w.tr.add(w.opIdx, w.clk.Now(), "external", doc)
	if err := w.space.SignalExternalChange(doc, fmt.Sprintf("sim-%d", w.opIdx)); err != nil {
		return fmt.Errorf("external change %s: %w", doc, err)
	}
	w.endOp()
	return nil
}

// doUpdateDirect rewrites the document's backing bits behind the
// system's back (invalidation cause 1, uncontrolled): only verifiers
// catch it, so it runs only in local-only seeds — a remote cache has
// no verifier and would be legitimately, unboundedly stale.
func (w *World) doUpdateDirect(doc string) error {
	w.writeSeq++
	data := []byte(fmt.Sprintf("ob%05d:%s:%08x", w.writeSeq, doc, w.rng.Int63()))
	t0 := w.clk.Now()
	w.tr.add(w.opIdx, t0, "update-direct", fmt.Sprintf("%s %q", doc, data))
	w.src.UpdateDirect("/"+doc, data)
	w.clk.Advance(opEpsilon)
	w.model.applyWrite(doc, data, t0, w.clk.Now())
	w.reconcile()
	return nil
}

// doRestart kills or gracefully closes the cache and boots a
// successor over the recovered disk tier. A crash (Kill, no flush) is
// only drawn in write-through mode: killing a write-back cache loses
// buffered writes by design, which the lost-write oracle would rightly
// report — graceful restarts flush first, so the model's
// reconciliation folds them like any other flush.
func (w *World) doRestart() error {
	crash := w.mode == core.WriteThrough && w.rng.Intn(2) == 1
	w.tr.add(w.opIdx, w.clk.Now(), "restart", fmt.Sprintf("crash=%v", crash))
	if err := w.guarded("restart", func() error { return w.restartDurable(crash) }); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	w.endOp()
	return nil
}

// drawFaults arms a fresh random fault mix on the wire.
func (w *World) drawFaults() {
	drop := w.rng.Float64() * 0.06
	reorder := w.rng.Float64() * 0.15
	delay := w.rng.Float64() * 0.30
	maxDelay := time.Duration(1+w.rng.Intn(25)) * time.Millisecond
	w.net.SetFaults(drop, reorder, delay, maxDelay)
	w.tr.note("drop=%.3f reorder=%.3f delay=%.3f maxDelay=%v", drop, reorder, delay, maxDelay)
}

func (w *World) doFaults() error {
	w.tr.add(w.opIdx, w.clk.Now(), "faults", "")
	if w.rng.Intn(3) == 0 {
		w.net.SetFaults(0, 0, 0, 0)
		w.tr.note("cleared")
	} else {
		w.drawFaults()
	}
	return nil
}

func (w *World) doBreakConns() error {
	w.tr.add(w.opIdx, w.clk.Now(), "break-conns", "")
	w.net.BreakConns()
	return nil
}

func (w *World) doPartition() error {
	w.tr.add(w.opIdx, w.clk.Now(), "partition", "")
	w.net.Partition()
	return nil
}

func (w *World) doHeal() error {
	w.tr.add(w.opIdx, w.clk.Now(), "heal", "")
	w.net.Heal()
	return nil
}

func (w *World) doSettle() error {
	w.tr.add(w.opIdx, w.clk.Now(), "settle", "")
	if err := w.settle(); err != nil {
		return err
	}
	w.tr.note("quiescent")
	return nil
}

// transformFn returns the pure byte transform for a catalog kind. The
// same function backs both the attached property and the model, so the
// oracle's expectation is the transform's definition, not a reimplementation.
func transformFn(kind int, name string, version int) func([]byte) []byte {
	switch kind {
	case 0: // tagger: order-sensitive suffix, version-visible
		tag := []byte(fmt.Sprintf("|%s.v%d", name, version))
		return func(b []byte) []byte { return append(append([]byte{}, b...), tag...) }
	case 1: // uppercase: idempotent, version-invariant
		return func(b []byte) []byte { return bytes.ToUpper(b) }
	default: // reverse: makes chain order matter
		return func(b []byte) []byte {
			out := make([]byte, len(b))
			for i, c := range b {
				out[len(b)-1-i] = c
			}
			return out
		}
	}
}
