package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"time"

	"placeless/internal/clock"
	"placeless/internal/cluster"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/remote"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
	"placeless/internal/store"
)

// epoch is the virtual-time origin of every run.
var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

// opEpsilon separates consecutive operations in virtual time so
// version boundaries do not collapse onto one instant.
const opEpsilon = 20 * time.Microsecond

// Config selects one simulated run. Everything about the run — stack
// topology, cache options, workload, fault schedule — derives
// deterministically from Seed; the pointer fields let scripted
// regression schedules pin a dimension instead of deriving it.
type Config struct {
	Seed int64
	// Ops is the number of workload operations (default 350).
	Ops int
	// StallBudget is the REAL time an operation may stay blocked (while
	// the watchdog advances the virtual clock under it) before the run
	// is declared deadlocked. Default 20s.
	StallBudget time.Duration

	// Overrides for scripted schedules; nil derives from the seed.
	Remote         *bool
	Mode           *core.WriteMode
	Memoize        *bool
	MaxDirty       *int
	FlushEvery     *time.Duration
	Capacity       *int64
	RemoteCapacity *int64
	// Durable attaches the content-addressed disk tier; derived seeds
	// run it on roughly a third of local-only worlds, where the
	// restart op (kill or graceful close, then recovery over the same
	// store directory) joins the schedule.
	Durable *bool
	// Proto pins the wire protocol the remote client requests
	// (server.ProtoAuto / ProtoV1 / ProtoV2). Unpinned, about half the
	// remote worlds force the legacy v1 framing and the rest negotiate
	// v2, so every fault schedule runs against both codecs.
	Proto *int
	// LegacyServer pins the server to the v1-only wire (emulating a
	// pre-v2 binary), exercising the handshake downgrade when the
	// client is left on ProtoAuto. Derived false.
	LegacyServer *bool
	// Cluster pins the consistent-hash cluster dimension: n > 0 starts
	// the world with n cache nodes behind a cluster router (requires
	// the remote stack), 0 disables it. Derived, roughly a third of
	// remote worlds run 2–4 nodes; the membership, kill, and cluster
	// read ops then join the schedule.
	Cluster *int
}

// World is one fully-built simulated deployment plus its reference
// model. All op methods are driver-sequential: one op at a time, with
// the watchdog goroutine advancing the virtual clock when an op blocks
// on network delivery or timers.
type World struct {
	cfg Config
	rng *rand.Rand

	clk   *clock.Virtual
	net   *simnet.Net
	src   *repo.Mem
	space *docspace.Space
	cache *core.Cache

	remoteOn  bool
	proto     int
	legacySrv bool
	srv       *server.Server
	client    *server.Client
	rc        *remote.Cache

	// Cluster dimension: extra cache nodes behind a consistent-hash
	// router, all served by the same origin server over separate
	// listeners and connections. clNodes is append-only (a departed
	// node is marked closed, never removed) so node names and oracle
	// bounds stay stable for the whole run.
	clusterOn  bool
	clReplicas int
	clNodes    []*clusterNode
	cl         *cluster.Cache
	clSeq      int
	clRng      *rand.Rand

	mode       core.WriteMode
	flushEvery time.Duration
	maxDirty   int

	durable  bool
	storeDir string
	st       *store.Store
	coreOpts core.Options

	model     *model
	tr        trace
	lastCheck time.Time
	opIdx     int
	propSeq   int
	writeSeq  int
}

// NewWorld builds the deployment for cfg. The derivation draws every
// random choice in a fixed order, so a seed always denotes the same
// world even when overrides pin individual dimensions.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 350
	}
	if cfg.StallBudget <= 0 {
		cfg.StallBudget = 20 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{cfg: cfg, rng: rng, model: newModel()}
	w.clk = clock.NewVirtual(epoch)
	w.net = simnet.NewNet(w.clk, rand.New(rand.NewSource(cfg.Seed^0x5DEECE66D)))
	w.src = repo.NewMem("src", w.clk, simnet.NewPath("loop", cfg.Seed+1))
	w.space = docspace.New(w.clk, repo.NewDMS("dms", w.clk, simnet.NewPath("loop", cfg.Seed+2)))
	w.lastCheck = w.clk.Now()

	// Core cache shape (drawn before overrides are applied).
	w.mode = core.WriteThrough
	if rng.Intn(2) == 1 {
		w.mode = core.WriteBack
	}
	memoize := rng.Intn(2) == 1
	var capacity int64
	if rng.Intn(2) == 1 {
		capacity = 512 + rng.Int63n(8192)
	}
	hitCost := time.Duration(rng.Intn(800)) * time.Microsecond
	fillCost := time.Duration(rng.Intn(800)) * time.Microsecond
	if rng.Intn(2) == 1 {
		w.flushEvery = time.Duration(20+rng.Intn(200)) * time.Millisecond
	}
	if rng.Intn(2) == 1 {
		w.maxDirty = 2 + rng.Intn(4)
	}
	w.remoteOn = rng.Float64() < 0.7
	degraded := remote.FailFast
	if rng.Intn(2) == 1 {
		degraded = remote.ServeStale
	}
	var staleTTL time.Duration
	if rng.Intn(2) == 1 {
		staleTTL = time.Duration(50+rng.Intn(300)) * time.Millisecond
	}
	var remoteCap int64
	if rng.Intn(2) == 1 {
		remoteCap = 512 + rng.Int63n(4096)
	}

	if cfg.Mode != nil {
		w.mode = *cfg.Mode
	}
	if cfg.Memoize != nil {
		memoize = *cfg.Memoize
	}
	if cfg.Capacity != nil {
		capacity = *cfg.Capacity
	}
	if cfg.FlushEvery != nil {
		w.flushEvery = *cfg.FlushEvery
	}
	if cfg.MaxDirty != nil {
		w.maxDirty = *cfg.MaxDirty
	}
	if cfg.Remote != nil {
		w.remoteOn = *cfg.Remote
	}
	if cfg.RemoteCapacity != nil {
		remoteCap = *cfg.RemoteCapacity
	}
	if w.mode != core.WriteBack {
		w.flushEvery, w.maxDirty = 0, 0
	}

	// The disk tier draws from its own generator so attaching it never
	// perturbs the existing seed → world derivation above; a seed that
	// reproduced a failure before the tier existed still denotes the
	// same topology and workload.
	w.durable = rand.New(rand.NewSource(cfg.Seed^0x6469736b)).Float64() < 0.35
	if cfg.Durable != nil {
		w.durable = *cfg.Durable
	}

	// The wire protocol dimension draws from its own generator for the
	// same reason: pre-v2 seeds keep denoting the same worlds. Half the
	// remote worlds pin the legacy v1 framing, half negotiate v2.
	if rand.New(rand.NewSource(cfg.Seed^0x77697265)).Intn(2) == 1 {
		w.proto = server.ProtoV1
	} else {
		w.proto = server.ProtoAuto
	}
	if cfg.Proto != nil {
		w.proto = *cfg.Proto
	}
	if cfg.LegacyServer != nil {
		w.legacySrv = *cfg.LegacyServer
	}

	w.coreOpts = core.Options{
		Name:       "sim",
		Capacity:   capacity,
		HitCost:    hitCost,
		FillCost:   fillCost,
		Mode:       w.mode,
		FlushEvery: w.flushEvery,
		MaxDirty:   w.maxDirty,
		Memoize:    memoize,
	}
	if w.durable {
		dir, err := os.MkdirTemp("", "placeless-sim-store-")
		if err != nil {
			return nil, fmt.Errorf("sim: store dir: %w", err)
		}
		w.storeDir = dir
		st, _, err := store.Open(dir, store.Options{})
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("sim: store open: %w", err)
		}
		w.st = st
		w.coreOpts.Store = st
	}
	w.cache = core.New(w.space, w.coreOpts)

	if err := w.setupDocs(); err != nil {
		return nil, fmt.Errorf("sim: setup: %w", err)
	}

	if w.remoteOn {
		w.srv = server.NewCached(w.space, w.src, w.cache)
		if w.st != nil {
			w.srv.SetStore(w.st)
		}
		w.srv.SetLegacyProtocolOnly(w.legacySrv)
		ln := w.net.Listen("srv")
		go func() { _ = w.srv.Serve(ln) }()
		client, err := server.Dial("srv",
			server.WithDialer(w.net.Dial),
			server.WithProtocolVersion(w.proto),
			server.WithJitterSeed(cfg.Seed),
			server.WithCallTimeout(300*time.Millisecond),
			server.WithDialTimeout(100*time.Millisecond),
			server.WithWriteTimeout(100*time.Millisecond),
			server.WithReconnect(time.Millisecond, 8*time.Millisecond),
		)
		if err != nil {
			return nil, fmt.Errorf("sim: dial: %w", err)
		}
		w.client = client
		// Ping before any fault can be armed, so Serve is known to be
		// accepting (and the teardown never races the startup).
		if _, err := client.Stats(); err != nil {
			return nil, fmt.Errorf("sim: ping: %w", err)
		}
		w.rc = remote.New(client, remote.Options{
			Capacity:       remoteCap,
			Clock:          w.clk,
			DegradedPolicy: degraded,
			StaleTTL:       staleTTL,
		})
		// The cluster dimension draws from its own generator (like the
		// disk tier and the wire protocol) so pre-cluster seeds keep
		// denoting the same base worlds; the extra nodes, router, and
		// cluster ops only exist where this stream turns them on.
		w.clRng = rand.New(rand.NewSource(cfg.Seed ^ 0x636c7573))
		w.clusterOn = w.clRng.Float64() < 0.35
		nodes := 2 + w.clRng.Intn(3)
		w.clReplicas = 1 + w.clRng.Intn(2)
		if cfg.Cluster != nil {
			w.clusterOn = *cfg.Cluster > 0
			if w.clusterOn {
				nodes = *cfg.Cluster
			}
		}
		if w.clusterOn {
			w.cl = cluster.New(cluster.Options{Replicas: w.clReplicas, VNodes: 64})
			for i := 0; i < nodes; i++ {
				if err := w.addClusterNode(); err != nil {
					return nil, fmt.Errorf("sim: cluster node: %w", err)
				}
			}
		}
		// Roughly half the remote seeds start with a lossy wire.
		if rng.Intn(2) == 1 {
			w.drawFaults()
		}
	}
	return w, nil
}

// clusterNode is one simulated cache daemon in the ring: its own
// listener endpoint on the shared origin server, its own resilient
// client connection (carrying its own subscriptions — the invalidation
// fanout), and its own remote cache.
type clusterNode struct {
	name   string
	client *server.Client
	rc     *remote.Cache
	closed bool // left the ring; rc and client are closed
}

// addClusterNode boots a fresh node and joins it to the ring. During a
// run the dial can legally fail (the workload may have the wire down);
// the caller treats that as an aborted join.
func (w *World) addClusterNode() error {
	name := fmt.Sprintf("n%d", w.clSeq)
	w.clSeq++
	ln := w.net.Listen("srv-" + name)
	go func() { _ = w.srv.Serve(ln) }()
	proto := w.proto
	if w.clRng.Intn(2) == 1 {
		proto = server.ProtoAuto
	}
	client, err := server.Dial("srv-"+name,
		server.WithDialer(w.net.Dial),
		server.WithProtocolVersion(proto),
		server.WithJitterSeed(w.cfg.Seed+1000+int64(w.clSeq)),
		server.WithCallTimeout(300*time.Millisecond),
		server.WithDialTimeout(100*time.Millisecond),
		server.WithWriteTimeout(100*time.Millisecond),
		server.WithReconnect(time.Millisecond, 8*time.Millisecond),
	)
	if err != nil {
		return err
	}
	// As with the base client: prove Serve is accepting before anything
	// can race the startup. Mid-run the ping can time out under faults;
	// the join is then aborted.
	if _, err := client.Stats(); err != nil {
		_ = client.Close()
		return err
	}
	var capacity int64
	if w.clRng.Intn(2) == 1 {
		capacity = 512 + w.clRng.Int63n(4096)
	}
	rc := remote.New(client, remote.Options{
		Capacity:       capacity,
		Clock:          w.clk,
		DegradedPolicy: remote.FailFast,
	})
	n := &clusterNode{name: name, client: client, rc: rc}
	w.clNodes = append(w.clNodes, n)
	w.model.addRemoteNode(name)
	return w.cl.AddNode(name, rc)
}

// Close tears the world down; safe after failures.
func (w *World) Close() {
	if w.remoteOn {
		for _, n := range w.clNodes {
			if !n.closed {
				n.rc.Close()
				_ = n.client.Close()
				n.closed = true
			}
		}
		w.rc.Close()
		_ = w.client.Close()
		_ = w.srv.Close()
	}
	_ = w.cache.Close()
	if w.st != nil {
		_ = w.st.Close()
	}
	if w.storeDir != "" {
		_ = os.RemoveAll(w.storeDir)
	}
}

// restartDurable models a process restart over the durable tier: the
// cache dies (Kill for a crash, Close for a graceful shutdown), the
// store's file handles close, and a successor opens the same directory
// — running the full scan-and-replay recovery — and boots a new cache
// over it. The document space and repositories survive: they model the
// Placeless middleware, which outlives any one cache process.
func (w *World) restartDurable(crash bool) error {
	if !w.durable {
		return fmt.Errorf("sim: restartDurable on a world with no disk tier")
	}
	if crash {
		w.cache.Kill()
	} else if err := w.cache.Close(); err != nil {
		return fmt.Errorf("sim: restart close: %w", err)
	}
	if err := w.st.Close(); err != nil {
		return fmt.Errorf("sim: restart store close: %w", err)
	}
	st, _, err := store.Open(w.storeDir, store.Options{})
	if err != nil {
		return fmt.Errorf("sim: restart store reopen: %w", err)
	}
	w.st = st
	w.coreOpts.Store = st
	w.cache = core.New(w.space, w.coreOpts)
	return nil
}

// setupDocs creates 2–4 documents with 2–4 users each (the first user
// owns the document and is its only writer) and a few initial
// properties, mirroring everything into the model.
func (w *World) setupDocs() error {
	docNames := []string{"alpha", "beta", "gamma", "delta"}
	pool := []string{"amy", "bob", "cam", "dee"}
	nDocs := 2 + w.rng.Intn(3)
	for i := 0; i < nDocs; i++ {
		id := docNames[i]
		users := append([]string{}, pool...)
		w.rng.Shuffle(len(users), func(a, b int) { users[a], users[b] = users[b], users[a] })
		users = users[:2+w.rng.Intn(3)]
		content := []byte(fmt.Sprintf("doc:%s:%08x", id, w.rng.Int63()))
		w.src.Store("/"+id, content)
		if _, err := w.space.CreateDocument(id, users[0], &property.RepoBitProvider{Repo: w.src, Path: "/" + id}); err != nil {
			return err
		}
		for _, u := range users[1:] {
			if _, err := w.space.AddReference(id, u); err != nil {
				return err
			}
		}
		w.model.addDoc(id, users, content, w.clk.Now())
		for n := w.rng.Intn(3); n > 0; n-- {
			if err := w.attachProp(id, "", docspace.Universal); err != nil {
				return err
			}
		}
		for _, u := range users {
			if w.rng.Intn(3) == 0 {
				if err := w.attachProp(id, u, docspace.Personal); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// guarded runs fn on its own goroutine while the watchdog advances the
// virtual clock — delayed messages, flush timers, and notifier timers
// only move when virtual time does. If fn stays blocked past the real
// StallBudget the run is declared deadlocked.
func (w *World) guarded(op string, fn func() error) error {
	done := make(chan error, 1)
	go func() { done <- fn() }()
	deadline := time.Now().Add(w.cfg.StallBudget)
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case err := <-done:
			return err
		case <-ticker.C:
			if time.Now().After(deadline) {
				return fmt.Errorf("deadlock suspected: op %q still blocked after %v of real time (virtual now %s, pending timers %d, inflight messages %d)",
					op, w.cfg.StallBudget, w.clk.Now().Format("15:04:05.000000"),
					w.clk.PendingTimers(), w.net.Inflight())
			}
			if !w.clk.AdvanceToNextTimer() {
				w.clk.Advance(10 * time.Millisecond)
			}
		}
	}
}

// reconcile detects write-back flushes the driver did not issue itself
// (periodic timers, overflow flushes) by comparing the cache's dirty
// table against the model's buffered writes. DirtyFor is ground truth:
// once it reports clean, the buffered content reached the repository
// somewhere between the last reconcile and now. It reports whether any
// flush was folded into the model, so settle knows the quiescence it
// just proved may predate that flush's invalidation pushes.
func (w *World) reconcile() bool {
	now := w.clk.Now()
	lo := w.lastCheck
	changed := false
	for _, id := range w.model.order {
		d := w.model.docs[id]
		if d.buffered != nil && !w.cache.DirtyFor(id, d.users[0]) {
			w.model.applyFlush(id, lo, now)
			changed = true
		}
	}
	w.lastCheck = now
	return changed
}

// endOp closes out an operation: a small virtual-time step so the next
// op starts at a distinct instant, then flush reconciliation.
func (w *World) endOp() {
	w.clk.Advance(opEpsilon)
	w.reconcile()
}

// checkLocal verifies a strongly-consistent read against the model. A
// flush whose repository store landed but whose dirty-table bookkeeping
// has not (it runs on a timer goroutine) can make the model lag by one
// step, so an apparent violation is re-checked after letting the flush
// finish.
func (w *World) checkLocal(doc, user string, got []byte, t0 time.Time) error {
	for attempt := 0; ; attempt++ {
		t1 := w.clk.Now()
		ok, hist := w.model.legalLocal(doc, user, got, t0, t1)
		if ok {
			return nil
		}
		if attempt >= 2 {
			return fmt.Errorf("STALE LOCAL READ %s/%s returned %q, legal in no model state during the read\n  %s",
				doc, user, truncate(got), hist)
		}
		time.Sleep(2 * time.Millisecond)
		w.reconcile()
	}
}

// checkRemote verifies a push-invalidated remote read against the
// model's causal staleness bound for the base remote cache.
func (w *World) checkRemote(doc, user string, got []byte) error {
	return w.checkRemoteAt("rc", doc, user, got)
}

// checkRemoteAt verifies a push-invalidated remote read served by the
// named node against that node's causal staleness bound.
func (w *World) checkRemoteAt(node, doc, user string, got []byte) error {
	for attempt := 0; ; attempt++ {
		ok, hist := w.model.legalRemoteAt(node, doc, user, got)
		if ok {
			return nil
		}
		if attempt >= 2 {
			return fmt.Errorf("STALE REMOTE READ %s/%s via %s returned %q, older than the proven staleness bound\n  %s",
				doc, user, node, truncate(got), hist)
		}
		time.Sleep(2 * time.Millisecond)
		w.reconcile()
	}
}

// settlePeer is one (client, cache) pair settle must prove quiescent:
// the base remote cache plus every cluster node still in the ring.
type settlePeer struct {
	name   string
	client *server.Client
	rc     *remote.Cache
}

func (w *World) settlePeers() []settlePeer {
	peers := []settlePeer{{"rc", w.client, w.rc}}
	for _, n := range w.clNodes {
		if !n.closed {
			peers = append(peers, settlePeer{n.name, n.client, n.rc})
		}
	}
	return peers
}

// settle drives the deployment to a quiescent, provably-consistent
// point: faults off, partition healed, every in-flight message
// delivered, and — for the base remote cache and every cluster node
// still in the ring — the invalidation queue drained, the connection
// up, and the post-reconnect suspect window closed. After settling,
// the model tightens every key's staleness bound on every node.
func (w *World) settle() error {
	if !w.remoteOn {
		return nil
	}
	w.net.SetFaults(0, 0, 0, 0)
	w.net.Heal()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stable := 0
		for stable < 3 {
			w.net.Flush()
			w.clk.Advance(5 * time.Millisecond)
			quiet := true
			for _, p := range w.settlePeers() {
				// Round-trip barrier: responses share the connection (and
				// its FIFO framing) with invalidation pushes, so once a
				// Stats call answers, every push the server sent before
				// that answer has been decoded — it is either applied or
				// counted by PendingInvalidations. Without the barrier a
				// push sitting undecoded in the receive buffer is invisible
				// to every counter and the loop declares quiescence early.
				client, rc := p.client, p.rc
				barrier := client.State() == server.StateConnected &&
					w.guarded("settle-barrier", func() error {
						_, err := client.Stats()
						return err
					}) == nil
				if !(barrier &&
					client.PendingInvalidations() == 0 &&
					client.State() == server.StateConnected &&
					!rc.Suspect()) {
					quiet = false
					break
				}
			}
			if quiet && w.net.Inflight() == 0 {
				stable++
			} else {
				stable = 0
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("settle did not converge: state=%v suspect=%v inflight=%d pendingInvals=%d",
					w.client.State(), w.rc.Suspect(), w.net.Inflight(), w.client.PendingInvalidations())
			}
			time.Sleep(time.Millisecond)
		}
		// The clock advances above may have fired a periodic write-back
		// flush whose invalidation pushes postdate the quiescence just
		// proved. Fold any such flush into the model and prove
		// quiescence again; only a pass that changes nothing may
		// tighten the staleness bounds below.
		if !w.reconcile() {
			break
		}
	}
	for _, id := range w.model.order {
		for _, u := range w.model.docs[id].users {
			w.model.settleKey(id, u)
		}
	}
	return nil
}

// finalCheck flushes, settles, and then requires every view to equal
// the model's (now unambiguous) current state exactly — the lost-write
// detector: a write that vanished leaves a reachable view that never
// converges.
func (w *World) finalCheck() error {
	if w.mode == core.WriteBack {
		if err := w.doFlush(); err != nil {
			return err
		}
	}
	if err := w.settle(); err != nil {
		return err
	}
	for _, id := range w.model.order {
		d := w.model.docs[id]
		for _, u := range d.users {
			want, ok := w.model.current(id, u)
			if !ok {
				return fmt.Errorf("final check: model state for %s/%s still ambiguous after flush+settle", id, u)
			}
			if err := w.doLocalRead(id, u); err != nil {
				return err
			}
			got, err := w.cache.Read(id, u)
			if err != nil {
				return fmt.Errorf("final local read %s/%s: %w", id, u, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("LOST WRITE (local): final read of %s/%s = %q, model says %q\n  %s",
					id, u, truncate(got), truncate(want), w.model.describe(mkey(id, u), time.Time{}, time.Time{}))
			}
			if w.remoteOn {
				var rgot []byte
				read := func() error {
					return w.guarded("final-remote-read", func() error {
						var e error
						rgot, e = w.rc.Read(id, u)
						return e
					})
				}
				// One final read can still lose its real-time call
				// deadline to scheduler starvation (the 300ms budget is
				// wall-clock, and -race plus a single CPU make it
				// reachable) or overlap one last straggling
				// invalidation. Both are transient: re-settling drains
				// them, so only staleness that survives repeated
				// settle+read cycles — a genuinely lost write or
				// invalidation — is reported.
				rerr := read()
				for tries := 0; tries < 3 && (rerr != nil || !bytes.Equal(rgot, want)); tries++ {
					if err := w.settle(); err != nil {
						return err
					}
					rerr = read()
				}
				if rerr != nil {
					return fmt.Errorf("final remote read %s/%s: %w", id, u, rerr)
				}
				if !bytes.Equal(rgot, want) {
					return fmt.Errorf("LOST WRITE (remote): final read of %s/%s = %q, model says %q\n  %s",
						id, u, truncate(rgot), truncate(want), w.model.describe(mkey(id, u), time.Time{}, time.Time{}))
				}
			}
			if w.clusterOn && len(w.cl.Nodes()) > 0 {
				var cgot []byte
				var via string
				read := func() error {
					return w.guarded("final-cluster-read", func() error {
						var e error
						cgot, via, e = w.cl.ReadVia(id, u)
						return e
					})
				}
				cerr := read()
				for tries := 0; tries < 3 && (cerr != nil || !bytes.Equal(cgot, want)); tries++ {
					if err := w.settle(); err != nil {
						return err
					}
					cerr = read()
				}
				if cerr != nil {
					return fmt.Errorf("final cluster read %s/%s: %w", id, u, cerr)
				}
				if !bytes.Equal(cgot, want) {
					return fmt.Errorf("LOST WRITE (cluster): final read of %s/%s via %s = %q, model says %q\n  %s",
						id, u, via, truncate(cgot), truncate(want), w.model.describe(mkey(id, u), time.Time{}, time.Time{}))
				}
			}
		}
	}
	return nil
}

// RunSeed executes one full seeded schedule and returns nil when every
// read was legal, no write was lost, and nothing deadlocked. On
// failure the event trace is dumped to a replayable file.
func RunSeed(cfg Config) error {
	if cfg.Ops <= 0 {
		cfg.Ops = 350
	}
	w, err := NewWorld(cfg)
	if err != nil {
		return err
	}
	defer w.Close()
	cfg = w.cfg // normalized defaults, for the repro line
	for i := 0; i < cfg.Ops; i++ {
		if err := w.step(i); err != nil {
			return dumpFailure(cfg, &w.tr, err)
		}
	}
	w.opIdx = cfg.Ops
	if err := w.finalCheck(); err != nil {
		return dumpFailure(cfg, &w.tr, err)
	}
	return nil
}
