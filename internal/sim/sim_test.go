package sim

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"placeless/internal/core"
)

var (
	seedsFlag        = flag.Int("sim.seeds", 64, "number of seeded schedules TestSimSweep runs")
	opsFlag          = flag.Int("sim.ops", 350, "operations per seeded schedule")
	seedFlag         = flag.Int64("sim.seed", -1, "single seed for TestSimSeed (reproduce a failure)")
	clusterSeedsFlag = flag.Int("sim.cluster-seeds", 16, "number of forced multi-node schedules TestSimSweepCluster runs")
)

// TestSimSweep runs a batch of seeded whole-stack schedules. Each seed
// builds a different deployment (write mode, memoization, capacities,
// remote on/off, fault mix) and checks every read against the oracle.
// `make sim` raises -sim.seeds past 1000; short mode keeps the batch
// small enough for every `go test ./...`.
func TestSimSweep(t *testing.T) {
	seeds := *seedsFlag
	if testing.Short() && seeds > 32 {
		seeds = 32
	}
	for s := 1; s <= seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%d", s), func(t *testing.T) {
			t.Parallel()
			if err := RunSeed(Config{Seed: int64(s), Ops: *opsFlag}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSimSweepCluster forces the cluster dimension on: every seed runs
// a multi-node deployment (2–4 nodes behind the consistent-hash
// router) so node kills, joins, leaves, and cluster-routed reads are
// exercised on every schedule, not just the ~third of remote seeds
// that derive a cluster. `make cluster` raises -sim.cluster-seeds; CI
// runs 128 per push.
func TestSimSweepCluster(t *testing.T) {
	seeds := *clusterSeedsFlag
	if testing.Short() && seeds > 8 {
		seeds = 8
	}
	on := true
	for s := 1; s <= seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%d", s), func(t *testing.T) {
			t.Parallel()
			nodes := 2 + s%3
			if err := RunSeed(Config{Seed: int64(s), Ops: *opsFlag, Remote: &on, Cluster: &nodes}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSimSeed replays exactly one seed, as printed in a failure's
// repro line. Skipped unless -sim.seed is given.
func TestSimSeed(t *testing.T) {
	if *seedFlag < 0 {
		t.Skip("pass -sim.seed=<n> (after -args) to replay one schedule")
	}
	if err := RunSeed(Config{Seed: *seedFlag, Ops: *opsFlag}); err != nil {
		t.Fatal(err)
	}
}

// --- oracle sensitivity: the model must reject what it should ---

// TestOracleRejectsStaleLocal checks the interval oracle at the model
// level: bytes from a version that closed before the read began are
// illegal.
func TestOracleRejectsStaleLocal(t *testing.T) {
	m := newModel()
	t0 := time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC)
	m.addDoc("d", []string{"amy"}, []byte("v1"), t0)
	t1 := t0.Add(time.Second)
	m.applyWrite("d", []byte("v2"), t1, t1)

	// A read spanning the transition may see either version.
	if ok, _ := m.legalLocal("d", "amy", []byte("v1"), t0, t1); !ok {
		t.Error("v1 should be legal for a read overlapping its lifetime")
	}
	if ok, _ := m.legalLocal("d", "amy", []byte("v2"), t1, t1.Add(time.Second)); !ok {
		t.Error("v2 should be legal after the write")
	}
	// A read strictly after the transition must not see the old bytes.
	if ok, _ := m.legalLocal("d", "amy", []byte("v1"), t1.Add(time.Second), t1.Add(2*time.Second)); ok {
		t.Error("oracle accepted v1 after v2 replaced it — stale reads would go undetected")
	}
	// Bytes that never existed are never legal.
	if ok, _ := m.legalLocal("d", "amy", []byte("vX"), t0, t1); ok {
		t.Error("oracle accepted bytes no model state ever held")
	}
}

// TestOracleRemoteCausalBound checks that a remote reader can be stale
// but can never travel backwards: once it has observed version N,
// versions older than N are illegal.
func TestOracleRemoteCausalBound(t *testing.T) {
	m := newModel()
	t0 := time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC)
	m.addDoc("d", []string{"amy"}, []byte("v1"), t0)
	m.applyWrite("d", []byte("v2"), t0.Add(time.Second), t0.Add(time.Second))

	// Before any observation, an un-invalidated remote copy of v1 is
	// legally stale.
	if ok, _ := m.legalRemote("d", "amy", []byte("v1")); !ok {
		t.Fatal("stale-but-causal v1 should be legal before v2 is observed")
	}
	// Observing v2 tightens the bound...
	if ok, _ := m.legalRemote("d", "amy", []byte("v2")); !ok {
		t.Fatal("current v2 should be legal")
	}
	// ...after which v1 must be rejected.
	if ok, _ := m.legalRemote("d", "amy", []byte("v1")); ok {
		t.Error("oracle accepted v1 after v2 was observed — time travel would go undetected")
	}
}

// TestOracleClusterPerNodeBounds checks the per-node shape of the
// causal bound: each replica's cache advances independently, so one
// node observing a new version must not outlaw another node's legally
// older copy — but settling tightens every registered node at once.
func TestOracleClusterPerNodeBounds(t *testing.T) {
	m := newModel()
	m.addRemoteNode("n0")
	m.addRemoteNode("n1")
	t0 := time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC)
	m.addDoc("d", []string{"amy"}, []byte("v1"), t0)
	m.applyWrite("d", []byte("v2"), t0.Add(time.Second), t0.Add(time.Second))

	// n0 observes v2; its own bound tightens.
	if ok, _ := m.legalRemoteAt("n0", "d", "amy", []byte("v2")); !ok {
		t.Fatal("current v2 should be legal on n0")
	}
	if ok, _ := m.legalRemoteAt("n0", "d", "amy", []byte("v1")); ok {
		t.Error("n0 accepted v1 after observing v2 — per-node time travel undetected")
	}
	// n1 has observed nothing: serving the older v1 after a failover is
	// legal. A single global ratchet would falsely flag this read.
	if ok, _ := m.legalRemoteAt("n1", "d", "amy", []byte("v1")); !ok {
		t.Error("n1's un-invalidated v1 copy must stay legal after n0 observed v2")
	}
	// Settling proves every node caught up: v1 dies everywhere.
	m.settleKey("d", "amy")
	if ok, _ := m.legalRemoteAt("n1", "d", "amy", []byte("v1")); ok {
		t.Error("n1 accepted v1 after settle proved all nodes caught up")
	}
	if ok, _ := m.legalRemoteAt("n1", "d", "amy", []byte("v2")); !ok {
		t.Error("v2 must stay legal on n1 after settle")
	}
}

// TestOracleCatchesStaleEndToEnd drives a real world, then asks the
// oracle about deliberately stale bytes: a harness whose oracle cannot
// fail is worthless, so this pins the failure path end to end.
func TestOracleCatchesStaleEndToEnd(t *testing.T) {
	mode := core.WriteThrough
	off := false
	w, err := NewWorld(Config{Seed: 42, Remote: &off, Mode: &mode})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	doc := w.model.order[0]
	user := w.model.docs[doc].users[0]
	before, err := w.cache.Read(doc, user)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.doWrite(doc); err != nil {
		t.Fatal(err)
	}
	w.clk.Advance(time.Second)
	t0 := w.clk.Now()
	w.clk.Advance(time.Millisecond)
	if ok, _ := w.model.legalLocal(doc, user, before, t0, w.clk.Now()); ok {
		t.Errorf("oracle accepted pre-write bytes %q for a read after the write", truncate(before))
	}
	if err := w.doLocalRead(doc, user); err != nil {
		t.Errorf("genuine read rejected: %v", err)
	}
}

// TestStallDetection pins the watchdog: an op that never returns must
// be reported as a deadlock, not hang the suite.
func TestStallDetection(t *testing.T) {
	off := false
	w, err := NewWorld(Config{Seed: 7, Remote: &off, StallBudget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.guarded("block-forever", func() error { select {} })
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("watchdog did not flag a blocked op: %v", err)
	}
}

// TestTraceDumpNamesSeed checks the failure artifact carries the seed
// and a runnable repro line.
func TestTraceDumpNamesSeed(t *testing.T) {
	tmp := t.TempDir()
	wd, err0 := os.Getwd()
	if err0 != nil {
		t.Fatal(err0)
	}
	if err0 := os.Chdir(tmp); err0 != nil {
		t.Fatal(err0)
	}
	defer func() { _ = os.Chdir(wd) }()
	var tr trace
	tr.add(0, time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC), "write", "alpha/amy")
	err := dumpFailure(Config{Seed: 99, Ops: 10}, &tr, fmt.Errorf("boom"))
	if err == nil {
		t.Fatal("dumpFailure must return an error")
	}
	for _, want := range []string{"seed 99", "boom", "-sim.seed=99"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("failure error missing %q: %v", want, err)
		}
	}
}
