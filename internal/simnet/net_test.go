package simnet

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"placeless/internal/clock"
)

func newTestNet(t *testing.T) (*Net, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	return NewNet(clk, rand.New(rand.NewSource(1))), clk
}

// dialPair returns a connected client/server conn pair.
func dialPair(t *testing.T, n *Net, name string) (client, server net.Conn) {
	t.Helper()
	l := n.Listen(name)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		accepted <- c
	}()
	c, err := n.Dial(name, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	select {
	case s := <-accepted:
		return c, s
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not complete")
		return nil, nil
	}
}

func readN(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read %d bytes: %v", n, err)
	}
	return buf
}

func TestNetRoundTrip(t *testing.T) {
	n, _ := newTestNet(t)
	c, s := dialPair(t, n, "srv")
	defer c.Close()
	defer s.Close()

	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("client write: %v", err)
	}
	if got := readN(t, s, 5); string(got) != "hello" {
		t.Fatalf("server read %q, want hello", got)
	}
	if _, err := s.Write([]byte("world")); err != nil {
		t.Fatalf("server write: %v", err)
	}
	if got := readN(t, c, 5); string(got) != "world" {
		t.Fatalf("client read %q, want world", got)
	}
}

func TestNetDialRefusedAndPartitioned(t *testing.T) {
	n, _ := newTestNet(t)
	if _, err := n.Dial("nobody", time.Second); err == nil {
		t.Fatal("dial to missing listener succeeded")
	}
	n.Listen("srv")
	n.Partition()
	if _, err := n.Dial("srv", time.Second); err == nil {
		t.Fatal("dial through partition succeeded")
	}
	n.Heal()
	if _, err := n.Dial("srv", time.Second); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestNetDropPoisonsStream(t *testing.T) {
	n, _ := newTestNet(t)
	c, s := dialPair(t, n, "srv")
	defer c.Close()
	defer s.Close()

	n.SetFaults(1, 0, 0, 0) // drop everything
	if _, err := c.Write([]byte("secret")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := readN(t, s, len(poison))
	if !bytes.Equal(got, poison) {
		t.Fatalf("dropped message delivered %x, want poison", got)
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestNetDelayHoldsUntilClockAdvance(t *testing.T) {
	n, clk := newTestNet(t)
	c, s := dialPair(t, n, "srv")
	defer c.Close()
	defer s.Close()

	n.SetFaults(0, 0, 1, 50*time.Millisecond) // delay everything
	if _, err := c.Write([]byte("late")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := n.Inflight(); got != 1 {
		t.Fatalf("Inflight = %d, want 1", got)
	}
	s.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := s.Read(make([]byte, 4)); err == nil {
		t.Fatal("read succeeded before clock advance")
	}
	s.SetReadDeadline(time.Time{})

	clk.Advance(50 * time.Millisecond)
	if got := readN(t, s, 4); string(got) != "late" {
		t.Fatalf("read %q after advance, want late", got)
	}
	if got := n.Inflight(); got != 0 {
		t.Fatalf("Inflight after delivery = %d, want 0", got)
	}
}

func TestNetReorderSwapsAdjacentMessages(t *testing.T) {
	n, _ := newTestNet(t)
	c, s := dialPair(t, n, "srv")
	defer c.Close()
	defer s.Close()

	n.SetFaults(0, 1, 0, 0) // hold first message; slot busy for the second
	if _, err := c.Write([]byte("AAAA")); err != nil {
		t.Fatalf("write A: %v", err)
	}
	if got := n.Inflight(); got != 1 {
		t.Fatalf("Inflight with held message = %d, want 1", got)
	}
	if _, err := c.Write([]byte("BBBB")); err != nil {
		t.Fatalf("write B: %v", err)
	}
	if got := readN(t, s, 8); string(got) != "BBBBAAAA" {
		t.Fatalf("read %q, want BBBBAAAA (reordered)", got)
	}
}

func TestNetFlushReleasesHeldMessage(t *testing.T) {
	n, _ := newTestNet(t)
	c, s := dialPair(t, n, "srv")
	defer c.Close()
	defer s.Close()

	n.SetFaults(0, 1, 0, 0)
	if _, err := c.Write([]byte("solo")); err != nil {
		t.Fatalf("write: %v", err)
	}
	n.Flush()
	if got := n.Inflight(); got != 0 {
		t.Fatalf("Inflight after flush = %d, want 0", got)
	}
	if got := readN(t, s, 4); string(got) != "solo" {
		t.Fatalf("read %q, want solo", got)
	}
}

func TestNetPartitionLimboAndHeal(t *testing.T) {
	n, _ := newTestNet(t)
	c, s := dialPair(t, n, "srv")
	defer c.Close()
	defer s.Close()

	n.Partition()
	c.Write([]byte("one."))
	s.Write([]byte("two."))
	c.Write([]byte("tri."))
	if got := n.Inflight(); got != 3 {
		t.Fatalf("Inflight during partition = %d, want 3", got)
	}
	n.Heal()
	if got := readN(t, s, 8); string(got) != "one.tri." {
		t.Fatalf("server read %q, want one.tri.", got)
	}
	if got := readN(t, c, 4); string(got) != "two." {
		t.Fatalf("client read %q, want two.", got)
	}
}

func TestNetBreakConnsGivesEOFButKeepsListener(t *testing.T) {
	n, _ := newTestNet(t)
	c, s := dialPair(t, n, "srv")

	n.BreakConns()
	if _, err := s.Read(make([]byte, 1)); err == nil {
		t.Fatal("server read succeeded after BreakConns")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("client write succeeded after BreakConns")
	}
	// The listener survives: a fresh dial works.
	c2, s2 := dialPair(t, n, "srv")
	defer c2.Close()
	defer s2.Close()
	c2.Write([]byte("ok"))
	if got := readN(t, s2, 2); string(got) != "ok" {
		t.Fatalf("post-break read %q, want ok", got)
	}
}

func TestNetCloseGivesPeerEOFAfterDrain(t *testing.T) {
	n, _ := newTestNet(t)
	c, s := dialPair(t, n, "srv")
	defer s.Close()

	c.Write([]byte("bye"))
	c.Close()
	if got := readN(t, s, 3); string(got) != "bye" {
		t.Fatalf("read %q, want bye", got)
	}
	if _, err := s.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after peer close = %v, want io.EOF", err)
	}
}

func TestNetReadDeadline(t *testing.T) {
	n, _ := newTestNet(t)
	c, s := dialPair(t, n, "srv")
	defer c.Close()
	defer s.Close()

	s.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	_, err := s.Read(make([]byte, 1))
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("read past deadline = %v, want net.Error timeout", err)
	}
}

func TestNewPathWithRandIsDeterministic(t *testing.T) {
	mk := func() *Path {
		return NewPathWithRand("p", rand.New(rand.NewSource(7)),
			Link{Name: "l", Latency: time.Millisecond, Jitter: time.Millisecond})
	}
	a, b := mk(), mk()
	for i := 0; i < 16; i++ {
		if ca, cb := a.Cost(100), b.Cost(100); ca != cb {
			t.Fatalf("draw %d: %v != %v", i, ca, cb)
		}
	}
}
