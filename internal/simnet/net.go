package simnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// This file extends simnet from a pure cost model (Path) to an
// in-process transport that the server wire can actually run over:
// Net hands out net.Listener/net.Conn pairs whose message deliveries
// are perturbed — dropped, delayed on the virtual clock, reordered,
// or black-holed during a partition — by a deterministic, seeded
// schedule. The simulation harness (internal/sim) uses it to drive
// the real gob protocol through adversarial interleavings without
// touching the kernel's TCP stack or real time.
//
// Fault semantics are chosen to match what a reliable byte stream can
// actually exhibit:
//
//   - drop: a TCP segment loss the stack could not recover from is a
//     broken connection, never a silently missing message. A "drop"
//     therefore replaces the message with poison bytes that desync
//     the peer's decoder, forcing the endpoints through their
//     teardown/reconnect paths.
//   - delay: the message is delivered when the virtual clock reaches
//     now+d, so delays only resolve when the simulation advances time.
//   - reorder: the message is held in a one-slot buffer and delivered
//     after the connection's next message (or on Flush/close).
//   - partition: messages from both directions accumulate in a limbo
//     queue, delivered in original order by Heal.

// TimerClock is the clock capability Net needs: current virtual time
// plus delayed callbacks. clock.Virtual and clock.Real both satisfy it.
type TimerClock interface {
	Now() time.Time
	AfterFunc(d time.Duration, fn func(now time.Time)) (cancel func())
}

// NewPathWithRand is NewPath with a caller-supplied PRNG, for harnesses
// that derive every random stream from one root seed. The rng must be
// dedicated to this path: Path serializes its own draws but cannot
// coordinate with other users of the same rand.Rand.
func NewPathWithRand(name string, rng *rand.Rand, links ...Link) *Path {
	return &Path{name: name, links: links, rng: rng}
}

// poison is what a dropped message turns into: bytes no gob stream can
// contain (an absurd uvarint length prefix), so the receiving decoder
// errors and the endpoint runs its connection-failure path.
var poison = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// NetStats counts fault decisions, for test assertions and run summaries.
type NetStats struct {
	Delivered int64 // messages delivered without perturbation
	Dropped   int64 // messages replaced with poison
	Delayed   int64 // messages deferred on the virtual clock
	Reordered int64 // messages held behind their successor
	Limboed   int64 // messages captured by a partition
}

// Net is a deterministic in-process network. All conns share one fault
// schedule drawn from the injected PRNG, so a single seed reproduces
// the exact perturbation sequence. Safe for concurrent use.
type Net struct {
	clk TimerClock

	mu          sync.Mutex
	rng         *rand.Rand
	listeners   map[string]*netListener
	conns       map[*Conn]struct{}
	dropRate    float64
	reorderRate float64
	delayRate   float64
	maxDelay    time.Duration
	partitioned bool
	limbo       []limboMsg
	inflight    int
	stats       NetStats
}

type limboMsg struct {
	to   *inbox
	data []byte
}

// NewNet builds a network on the given clock. rng drives every fault
// decision and must be dedicated to this Net.
func NewNet(clk TimerClock, rng *rand.Rand) *Net {
	return &Net{
		clk:       clk,
		rng:       rng,
		listeners: make(map[string]*netListener),
		conns:     make(map[*Conn]struct{}),
	}
}

// SetFaults configures the per-message perturbation probabilities.
// Rates are cumulative-exclusive: each message draws once and is
// dropped with probability drop, reordered with reorder, delayed with
// delay (uniform in (0, maxDelay]), else delivered immediately.
func (n *Net) SetFaults(drop, reorder, delay float64, maxDelay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropRate, n.reorderRate, n.delayRate, n.maxDelay = drop, reorder, delay, maxDelay
}

// Stats returns the accumulated fault counters.
func (n *Net) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Inflight reports how many messages are currently captured by the
// network: delayed, held for reorder, or in partition limbo. The
// harness drains to zero before trusting a consistency check.
func (n *Net) Inflight() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inflight
}

// Partition black-holes all traffic (and refuses dials) until Heal.
func (n *Net) Partition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned = true
}

// Heal ends a partition and delivers everything captured in limbo, in
// original send order.
func (n *Net) Heal() {
	n.mu.Lock()
	n.partitioned = false
	msgs := n.limbo
	n.limbo = nil
	n.inflight -= len(msgs)
	n.mu.Unlock()
	for _, m := range msgs {
		m.to.push(m.data)
	}
}

// Flush delivers every held reorder slot immediately. Settle phases
// call it (after Heal) so a message with no successor cannot stay
// captured forever.
func (n *Net) Flush() {
	n.mu.Lock()
	var frees []func()
	for c := range n.conns {
		if f := c.takeHeld(); f != nil {
			frees = append(frees, f)
		}
	}
	n.mu.Unlock()
	for _, f := range frees {
		f()
	}
}

// BreakConns closes every established connection (both endpoints),
// leaving listeners intact — the simulation's "kill the TCP
// connections but not the server" fault.
func (n *Net) BreakConns() {
	n.mu.Lock()
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// BreakConnsTo closes every established connection whose endpoints
// belong to the named listener, leaving other endpoints' conns and all
// listeners intact — the cluster simulation's "kill one node's links"
// fault. Conn addresses are derived from the listener name at dial
// time, so the prefix match is exact per endpoint.
func (n *Net) BreakConnsTo(name string) {
	prefix := name + ":"
	n.mu.Lock()
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		if strings.HasPrefix(string(c.addr), prefix) {
			conns = append(conns, c)
		}
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Listen registers (or replaces) the named endpoint and returns its
// listener. Replacing closes the previous listener, which is how a
// restarted server reclaims its address.
func (n *Net) Listen(name string) net.Listener {
	n.mu.Lock()
	old := n.listeners[name]
	l := &netListener{n: n, name: name}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[name] = l
	n.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return l
}

// Dial connects to the named listener. The timeout only bounds the
// accept handshake, which is instantaneous here; dials fail fast when
// the listener is absent or the network is partitioned.
func (n *Net) Dial(name string, timeout time.Duration) (net.Conn, error) {
	n.mu.Lock()
	if n.partitioned {
		n.mu.Unlock()
		return nil, &net.OpError{Op: "dial", Net: "sim", Err: errors.New("simnet: network partitioned")}
	}
	l := n.listeners[name]
	n.mu.Unlock()
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: "sim", Err: errors.New("simnet: connection refused")}
	}
	client := &Conn{n: n, addr: simAddr(name + ":client"), in: newInbox()}
	server := &Conn{n: n, addr: simAddr(name + ":server"), in: newInbox()}
	client.peer, server.peer = server, client
	n.mu.Lock()
	n.conns[client] = struct{}{}
	n.conns[server] = struct{}{}
	n.mu.Unlock()
	if err := l.enqueue(server); err != nil {
		client.Close()
		return nil, err
	}
	return client, nil
}

// Dialer adapts Dial to the dialer signature the server client accepts
// (server.WithDialer).
func (n *Net) Dialer() func(addr string, timeout time.Duration) (net.Conn, error) {
	return n.Dial
}

type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// netListener queues accepted conns for a named endpoint.
type netListener struct {
	n    *Net
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*Conn
	closed  bool
}

func (l *netListener) enqueue(c *Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return &net.OpError{Op: "dial", Net: "sim", Err: errors.New("simnet: connection refused")}
	}
	l.backlog = append(l.backlog, c)
	l.cond.Signal()
	return nil
}

// Accept implements net.Listener.
func (l *netListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, net.ErrClosed
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Close implements net.Listener. Conns already accepted stay open.
func (l *netListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	backlog := l.backlog
	l.backlog = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	for _, c := range backlog {
		c.Close()
	}
	l.n.mu.Lock()
	if l.n.listeners[l.name] == l {
		delete(l.n.listeners, l.name)
	}
	l.n.mu.Unlock()
	return nil
}

// Addr implements net.Listener.
func (l *netListener) Addr() net.Addr { return simAddr(l.name) }

// Conn is one endpoint of an in-process connection. Each Write is one
// message through the fault scheduler; Read drains delivered bytes as
// a stream, so framing above it (gob) behaves exactly as over TCP.
type Conn struct {
	n    *Net
	addr simAddr
	peer *Conn
	in   *inbox

	mu      sync.Mutex
	closed  bool
	held    []byte // one-slot reorder buffer for messages outbound to peer
	hasHeld bool
}

// takeHeld removes the held reorder message and returns a closure that
// delivers it, or nil if no message is held. Caller must hold n.mu;
// the returned closure must run after n.mu is released.
func (c *Conn) takeHeld() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.hasHeld {
		return nil
	}
	data := c.held
	c.held, c.hasHeld = nil, false
	peer := c.peer
	c.n.inflight--
	return func() { peer.in.push(data) }
}

// Write implements net.Conn. The full buffer is treated as one message
// and routed through the fault scheduler; the return value always
// claims success for perturbed messages, as a kernel send buffer would.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.mu.Unlock()
	if c.peer.in.unwritable() {
		return 0, &net.OpError{Op: "write", Net: "sim", Err: errors.New("simnet: broken pipe")}
	}
	data := make([]byte, len(b))
	copy(data, b)

	n := c.n
	n.mu.Lock()
	switch {
	case n.partitioned:
		n.limbo = append(n.limbo, limboMsg{to: c.peer.in, data: data})
		n.inflight++
		n.stats.Limboed++
		n.mu.Unlock()

	default:
		r := n.rng.Float64()
		switch {
		case r < n.dropRate:
			n.stats.Dropped++
			n.mu.Unlock()
			c.peer.in.push(poison)

		case r < n.dropRate+n.reorderRate && !c.reorderSlotBusy():
			c.mu.Lock()
			c.held, c.hasHeld = data, true
			c.mu.Unlock()
			n.inflight++
			n.stats.Reordered++
			n.mu.Unlock()

		case r < n.dropRate+n.reorderRate+n.delayRate && n.maxDelay > 0:
			d := time.Duration(n.rng.Int63n(int64(n.maxDelay))) + 1
			n.inflight++
			n.stats.Delayed++
			peer := c.peer
			n.mu.Unlock()
			n.clk.AfterFunc(d, func(time.Time) {
				n.mu.Lock()
				n.inflight--
				n.mu.Unlock()
				peer.in.push(data)
			})

		default:
			n.stats.Delivered++
			n.mu.Unlock()
			c.peer.in.push(data)
			// The reorder contract: a held message follows the next
			// message on the wire.
			if f := c.takeHeldLocked(); f != nil {
				f()
			}
		}
	}
	return len(b), nil
}

// reorderSlotBusy reports whether a message is already held. Called
// with n.mu held; takes only the conn lock (leaf).
func (c *Conn) reorderSlotBusy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hasHeld
}

// takeHeldLocked is takeHeld with the net-lock bookkeeping done
// internally (for call sites not holding n.mu).
func (c *Conn) takeHeldLocked() func() {
	c.mu.Lock()
	if !c.hasHeld {
		c.mu.Unlock()
		return nil
	}
	data := c.held
	c.held, c.hasHeld = nil, false
	peer := c.peer
	c.mu.Unlock()
	c.n.mu.Lock()
	c.n.inflight--
	c.n.mu.Unlock()
	return func() { peer.in.push(data) }
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) { return c.in.read(b) }

// Close implements net.Conn. The peer sees EOF after draining already
// delivered bytes; anything still captured by the network for this
// conn is discarded.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	hadHeld := c.hasHeld
	c.held, c.hasHeld = nil, false
	c.mu.Unlock()

	n := c.n
	n.mu.Lock()
	if hadHeld {
		n.inflight--
	}
	delete(n.conns, c)
	n.mu.Unlock()

	c.in.close()
	c.peer.in.setEOF()
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.addr }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.peer.addr }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.in.setDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.in.setDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn. Writes never block in this
// transport, so the deadline is trivially met.
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// String identifies the conn in traces.
func (c *Conn) String() string { return fmt.Sprintf("simconn(%s)", c.addr) }

// timeoutError satisfies net.Error with Timeout() == true, which is
// what deadline-aware callers (the gob frame reader's idle timeout)
// check for.
type timeoutError struct{}

func (timeoutError) Error() string   { return "simnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// inbox is the receive side of one conn direction: a byte buffer fed
// by message deliveries and drained by stream reads. Read deadlines
// are real-time (matching net.Conn semantics — the client's timers are
// real even in simulation).
type inbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	eof      bool // peer closed: drain, then io.EOF
	closed   bool // this endpoint closed: reads fail immediately
	deadline time.Time
	dlTimer  *time.Timer
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(data []byte) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed || ib.eof {
		return // delivery into a torn-down direction is lost, like post-FIN data
	}
	ib.buf = append(ib.buf, data...)
	ib.cond.Broadcast()
}

func (ib *inbox) unwritable() bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.closed || ib.eof
}

func (ib *inbox) read(b []byte) (int, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if ib.closed {
			return 0, net.ErrClosed
		}
		if len(ib.buf) > 0 {
			n := copy(b, ib.buf)
			ib.buf = ib.buf[n:]
			return n, nil
		}
		if ib.eof {
			return 0, io.EOF
		}
		if !ib.deadline.IsZero() && !time.Now().Before(ib.deadline) {
			return 0, timeoutError{}
		}
		ib.cond.Wait()
	}
}

func (ib *inbox) close() {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ib.closed = true
	if ib.dlTimer != nil {
		ib.dlTimer.Stop()
	}
	ib.cond.Broadcast()
}

func (ib *inbox) setEOF() {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ib.eof = true
	ib.cond.Broadcast()
}

func (ib *inbox) setDeadline(t time.Time) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ib.deadline = t
	if ib.dlTimer != nil {
		ib.dlTimer.Stop()
		ib.dlTimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		ib.dlTimer = time.AfterFunc(d, func() {
			ib.mu.Lock()
			ib.cond.Broadcast()
			ib.mu.Unlock()
		})
	}
	ib.cond.Broadcast()
}
