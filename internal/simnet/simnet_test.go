package simnet

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestLinkLatencyOnly(t *testing.T) {
	l := Link{Latency: 10 * time.Millisecond}
	if got := l.TransferTime(1 << 20); got != 10*time.Millisecond {
		t.Fatalf("TransferTime = %v, want latency only", got)
	}
}

func TestLinkBandwidth(t *testing.T) {
	l := Link{Latency: time.Millisecond, BytesPerSecond: 1000}
	got := l.TransferTime(500)
	want := time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Fatalf("TransferTime(500) = %v, want %v", got, want)
	}
}

func TestLinkZeroValueFree(t *testing.T) {
	var l Link
	if got := l.TransferTime(1 << 30); got != 0 {
		t.Fatalf("zero link cost = %v, want 0", got)
	}
}

func TestPathSumsLinks(t *testing.T) {
	p := NewPath("p", 1,
		Link{Latency: 2 * time.Millisecond},
		Link{Latency: 3 * time.Millisecond},
	)
	if got := p.Cost(0); got != 5*time.Millisecond {
		t.Fatalf("Cost = %v, want 5ms", got)
	}
}

func TestPathDeterministicJitter(t *testing.T) {
	mk := func() *Path {
		return NewPath("j", 42, Link{Latency: time.Millisecond, Jitter: time.Millisecond})
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		if ca, cb := a.Cost(100), b.Cost(100); ca != cb {
			t.Fatalf("same-seed paths diverged at call %d: %v vs %v", i, ca, cb)
		}
	}
}

func TestPathStats(t *testing.T) {
	p := NewPath("s", 1, Link{Latency: time.Millisecond})
	p.Cost(100)
	p.Cost(200)
	reqs, bytes, total := p.Stats()
	if reqs != 2 || bytes != 300 || total != 2*time.Millisecond {
		t.Fatalf("Stats = (%d, %d, %v)", reqs, bytes, total)
	}
}

func TestPathString(t *testing.T) {
	p := NewPath("wan", 1, Link{Name: "internet", Latency: time.Millisecond, BytesPerSecond: 100})
	s := p.String()
	if !strings.Contains(s, "wan") || !strings.Contains(s, "internet") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCanonicalOrdering(t *testing.T) {
	// The cache-relevant property of the three canonical paths: for
	// any document size, local < LAN < WAN.
	for _, n := range []int64{0, 1104, 1915, 10883, 1 << 20} {
		l := Local(1).Cost(n)
		lan := LAN(1).Cost(n)
		wan := WAN(1).Cost(n)
		if !(l < lan && lan < wan) {
			t.Fatalf("size %d: local=%v lan=%v wan=%v not strictly ordered", n, l, lan, wan)
		}
	}
}

// Property: cost is monotonically non-decreasing in payload size.
func TestCostMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		small, big := int64(a), int64(b)
		if small > big {
			small, big = big, small
		}
		p := NewPath("m", 7, Link{Latency: time.Millisecond, BytesPerSecond: 50 << 10})
		return p.Cost(small) <= p.Cost(big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a path of k identical latency-only links costs exactly
// k×latency regardless of payload.
func TestPathLinearityProperty(t *testing.T) {
	f := func(k uint8, payload uint16) bool {
		n := int(k%8) + 1
		links := make([]Link, n)
		for i := range links {
			links[i] = Link{Latency: time.Millisecond}
		}
		p := NewPath("lin", 1, links...)
		return p.Cost(int64(payload)) == time.Duration(n)*time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
