// Package simnet models network transfer costs for the Placeless
// simulation.
//
// The paper measures document access times against three repositories
// at very different network distances: a web server on the PARC LAN, a
// web server across the Internet (www.gatech.edu), and the local file
// system. This package captures exactly the axes that matter to a
// cache — per-request latency and bandwidth-limited transfer time —
// as composable Links, so the benchmark harness can reproduce the
// shape of Table 1 on a virtual clock.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Link models one network hop: a fixed round-trip latency plus a
// transfer rate. The zero value is an infinitely fast link.
type Link struct {
	// Name identifies the link in traces and error messages.
	Name string
	// Latency is the fixed per-request cost (propagation + request
	// processing), independent of payload size.
	Latency time.Duration
	// BytesPerSecond is the sustained transfer rate; zero means
	// infinitely fast (no size-dependent cost).
	BytesPerSecond int64
	// Jitter, if non-zero, adds a uniformly distributed extra delay
	// in [0, Jitter) drawn from the Path's deterministic PRNG.
	Jitter time.Duration
}

// TransferTime returns the modeled time to move n payload bytes across
// the link, excluding jitter.
func (l Link) TransferTime(n int64) time.Duration {
	d := l.Latency
	if l.BytesPerSecond > 0 && n > 0 {
		d += time.Duration(float64(n) / float64(l.BytesPerSecond) * float64(time.Second))
	}
	return d
}

// Path is a sequence of links between an accessor and a repository,
// with a deterministic jitter source. Paths are safe for concurrent
// use.
type Path struct {
	mu    sync.Mutex
	name  string
	links []Link
	rng   *rand.Rand

	totalRequests int64
	totalBytes    int64
	totalTime     time.Duration
}

// NewPath builds a path from the given links. seed fixes the jitter
// PRNG so simulations are reproducible.
func NewPath(name string, seed int64, links ...Link) *Path {
	return &Path{name: name, links: links, rng: rand.New(rand.NewSource(seed))}
}

// Name returns the path's identifier.
func (p *Path) Name() string { return p.name }

// Cost returns the modeled time to transfer n bytes end-to-end,
// including any jitter drawn for this call, and records the transfer
// in the path statistics.
func (p *Path) Cost(n int64) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var d time.Duration
	for _, l := range p.links {
		d += l.TransferTime(n)
		if l.Jitter > 0 {
			d += time.Duration(p.rng.Int63n(int64(l.Jitter)))
		}
	}
	p.totalRequests++
	p.totalBytes += n
	p.totalTime += d
	return d
}

// Stats reports the accumulated transfer totals for the path.
func (p *Path) Stats() (requests, bytes int64, total time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalRequests, p.totalBytes, p.totalTime
}

// String summarizes the path configuration.
func (p *Path) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.name
	for _, l := range p.links {
		s += fmt.Sprintf(" ->[%s %v %dB/s]", l.Name, l.Latency, l.BytesPerSecond)
	}
	return s
}

// Canonical paths calibrated so the simulated Table 1 reproduces the
// shape of the paper's measurements (local ≈ few ms, nearby web ≈ tens
// of ms, far web ≈ hundreds of ms for ~10 KB documents in 1999).
var (
	// Local models the local file system: sub-millisecond seek plus
	// ~10 MB/s late-90s disk streaming.
	Local = func(seed int64) *Path {
		return NewPath("local", seed, Link{Name: "disk", Latency: 800 * time.Microsecond, BytesPerSecond: 10 << 20})
	}
	// LAN models a server on the same campus network (the paper's
	// "parcweb"): ~5 ms round trip on 10 Mbit Ethernet.
	LAN = func(seed int64) *Path {
		return NewPath("lan", seed, Link{Name: "ether", Latency: 5 * time.Millisecond, BytesPerSecond: 1 << 20})
	}
	// WAN models a cross-country web fetch (the paper's
	// www.gatech.edu): ~80 ms RTT and ~40 KB/s effective throughput.
	WAN = func(seed int64) *Path {
		return NewPath("wan", seed,
			Link{Name: "campus", Latency: 5 * time.Millisecond, BytesPerSecond: 1 << 20},
			Link{Name: "internet", Latency: 75 * time.Millisecond, BytesPerSecond: 40 << 10})
	}
)
