package sig

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestOfDeterministic(t *testing.T) {
	a, b := Of([]byte("doc")), Of([]byte("doc"))
	if a != b {
		t.Fatal("same content produced different signatures")
	}
}

func TestOfDistinguishesContent(t *testing.T) {
	if Of([]byte("a")) == Of([]byte("b")) {
		t.Fatal("different content collided")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	s := Of([]byte("round trip"))
	got, ok := Parse(s.String())
	if !ok || got != s {
		t.Fatalf("Parse(String()) = %v, %v", got, ok)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"", "zz", "0123", "g0000000000000000000000000000000"} {
		if _, ok := Parse(bad); ok {
			t.Errorf("Parse(%q) accepted malformed input", bad)
		}
	}
}

func TestZeroSentinel(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if Of([]byte("x")).IsZero() {
		t.Fatal("real signature reported as zero")
	}
}

// Property: String/Parse round-trips for arbitrary content signatures.
func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		s := Of(data)
		got, ok := Parse(s.String())
		return ok && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: equal content ⇒ equal signature, and signatures of
// content differing in one byte differ (MD5 collision probability is
// negligible at quick-check scale).
func TestContentEqualityProperty(t *testing.T) {
	f := func(data []byte, flip uint16) bool {
		cp := append([]byte{}, data...)
		if Of(data) != Of(cp) {
			return false
		}
		if len(cp) == 0 {
			return true
		}
		cp[int(flip)%len(cp)] ^= 0xFF
		return bytes.Equal(data, cp) || Of(data) != Of(cp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
