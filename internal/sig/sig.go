// Package sig computes content signatures for shared cache storage.
//
// The paper (§3, Cache Management) proposes mapping (document, user)
// pairs to a content signature such as an MD5 hash, and mapping
// signatures to the stored bytes, so that identical transformed
// content cached on behalf of different users is stored once. This
// package provides that signature type.
package sig

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
)

// Signature is an MD5 digest of document content. The paper names MD5
// explicitly; it is used here for content equality, not security.
type Signature [md5.Size]byte

// Size is the byte length of a Signature, for fixed-width binary
// encodings (the durable store's segment records).
const Size = md5.Size

// Of returns the signature of data.
func Of(data []byte) Signature { return md5.Sum(data) }

// String renders the signature as lowercase hex.
func (s Signature) String() string { return hex.EncodeToString(s[:]) }

// Zero is the signature of no content; a convenient sentinel for
// "not yet computed".
var Zero Signature

// IsZero reports whether the signature is the zero sentinel.
func (s Signature) IsZero() bool { return s == Zero }

// MarshalText implements encoding.TextMarshaler, rendering the
// signature as lowercase hex — the representation used by the durable
// store's JSON-lines meta log and any other textual persistence.
func (s Signature) MarshalText() ([]byte, error) {
	out := make([]byte, hex.EncodedLen(len(s)))
	hex.Encode(out, s[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler, accepting exactly
// the output of MarshalText.
func (s *Signature) UnmarshalText(text []byte) error {
	parsed, ok := Parse(string(text))
	if !ok {
		return fmt.Errorf("sig: malformed signature %q", text)
	}
	*s = parsed
	return nil
}

// Parse decodes a hex string produced by String. It reports ok=false
// for malformed input.
func Parse(s string) (Signature, bool) {
	var out Signature
	if len(s) != hex.EncodedLen(md5.Size) {
		return out, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, false
	}
	copy(out[:], b)
	return out, true
}
