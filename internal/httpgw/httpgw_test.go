package httpgw

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/obs"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

type env struct {
	src   *repo.Mem
	space *docspace.Space
	cache *core.Cache
	ts    *httptest.Server
}

func newEnv(t *testing.T, cached bool) *env {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	e := &env{
		src:   repo.NewMem("disk", clk, simnet.Local(1)),
		space: docspace.New(clk, nil),
	}
	if cached {
		e.cache = core.New(e.space, core.Options{Name: "gw"})
	}
	e.ts = httptest.NewServer(New(e.space, e.cache))
	t.Cleanup(e.ts.Close)
	return e
}

func (e *env) addDoc(t *testing.T, id, owner string, content []byte) {
	t.Helper()
	e.src.Store("/"+id, content)
	if _, err := e.space.CreateDocument(id, owner, &property.RepoBitProvider{Repo: e.src, Path: "/" + id}); err != nil {
		t.Fatal(err)
	}
}

// get fetches a document and returns body, cache header, status.
func (e *env) get(t *testing.T, id, user string) (string, string, int) {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/doc/" + id + "?user=" + user)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body), resp.Header.Get("X-Placeless-Cache"), resp.StatusCode
}

func TestGetPersonalizedViews(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "memo", "alice", []byte("teh memo"))
	e.space.AddReference("memo", "bob")
	e.space.Attach("memo", "alice", docspace.Personal, property.NewSpellCorrector(0))

	alice, hdr, code := e.get(t, "memo", "alice")
	if code != 200 || alice != "the memo" || hdr != "MISS" {
		t.Fatalf("alice: %q %s %d", alice, hdr, code)
	}
	bob, _, _ := e.get(t, "memo", "bob")
	if bob != "teh memo" {
		t.Fatalf("bob: %q", bob)
	}
	_, hdr, _ = e.get(t, "memo", "alice")
	if hdr != "HIT" {
		t.Fatalf("second read header = %s", hdr)
	}
}

func TestPutWritesThrough(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "memo", "alice", []byte("v1"))
	req, _ := http.NewRequest(http.MethodPut, e.ts.URL+"/doc/memo?user=alice", strings.NewReader("v2"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	fr, _ := e.src.Fetch("/memo")
	if string(fr.Data) != "v2" {
		t.Fatalf("stored %q", fr.Data)
	}
	body, _, _ := e.get(t, "memo", "alice")
	if body != "v2" {
		t.Fatalf("read-back %q", body)
	}
}

func TestNotFoundAndBadRequests(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "memo", "alice", []byte("x"))
	if _, _, code := e.get(t, "ghost", "alice"); code != http.StatusNotFound {
		t.Fatalf("missing doc status = %d", code)
	}
	if _, _, code := e.get(t, "memo", "stranger"); code != http.StatusNotFound {
		t.Fatalf("no-reference status = %d", code)
	}
	resp, _ := http.Get(e.ts.URL + "/doc/memo") // no user
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing user status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(e.ts.URL + "/doc/") // empty id
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty id status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, e.ts.URL+"/doc/memo?user=alice", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestListVisibleDocs(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "a", "alice", []byte("1"))
	e.addDoc(t, "b", "bob", []byte("2"))
	e.space.AddReference("b", "alice")
	e.addDoc(t, "c", "carol", []byte("3"))

	resp, err := http.Get(e.ts.URL + "/docs?user=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var docs []string
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %v", docs)
	}
	resp, _ = http.Get(e.ts.URL + "/docs?user=nobody")
	var empty []string
	json.NewDecoder(resp.Body).Decode(&empty)
	resp.Body.Close()
	if len(empty) != 0 {
		t.Fatalf("nobody sees %v", empty)
	}
}

func TestFindEndpoint(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "b1", "alice", []byte("1"))
	e.addDoc(t, "b2", "alice", []byte("2"))
	e.space.AttachStatic("b1", "", docspace.Universal, property.Static{Key: "budget related"})
	e.space.AttachStatic("b2", "", docspace.Universal, property.Static{Key: "status", Value: "draft"})

	resp, err := http.Get(e.ts.URL + "/find?user=alice&key=budget+related")
	if err != nil {
		t.Fatal(err)
	}
	var matches []map[string]string
	json.NewDecoder(resp.Body).Decode(&matches)
	resp.Body.Close()
	if len(matches) != 1 || matches[0]["doc"] != "b1" || matches[0]["level"] != "universal" {
		t.Fatalf("matches = %v", matches)
	}
	// Value filter.
	resp, _ = http.Get(e.ts.URL + "/find?user=alice&key=status&value=final")
	matches = nil
	json.NewDecoder(resp.Body).Decode(&matches)
	resp.Body.Close()
	if len(matches) != 0 {
		t.Fatalf("value filter leaked: %v", matches)
	}
	// Missing key parameter.
	resp, _ = http.Get(e.ts.URL + "/find?user=alice")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing key status = %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "d", "u", []byte("x"))
	e.get(t, "d", "u")
	e.get(t, "d", "u")
	resp, err := http.Get(e.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st core.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUncachedGateway(t *testing.T) {
	e := newEnv(t, false)
	e.addDoc(t, "d", "u", []byte("raw"))
	body, hdr, code := e.get(t, "d", "u")
	if code != 200 || body != "raw" || hdr != "BYPASS" {
		t.Fatalf("%q %s %d", body, hdr, code)
	}
	resp, _ := http.Get(e.ts.URL + "/stats")
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(b)) != "{}" {
		t.Fatalf("uncached stats = %q", b)
	}
	// PUT through the uncached gateway.
	req, _ := http.NewRequest(http.MethodPut, e.ts.URL+"/doc/d?user=u", strings.NewReader("v2"))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
}

func TestHeadRequest(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "d", "u", []byte("head me"))
	resp, err := http.Head(e.ts.URL + "/doc/d?user=u")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) != 0 {
		t.Fatalf("HEAD status=%d body=%q", resp.StatusCode, body)
	}
	if resp.Header.Get("ETag") == "" || resp.Header.Get("Content-Length") != "7" {
		t.Fatalf("HEAD headers: etag=%q len=%q", resp.Header.Get("ETag"), resp.Header.Get("Content-Length"))
	}
}

func TestETagConditionalGet(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "d", "u", []byte("etag me"))

	resp, err := http.Get(e.ts.URL + "/doc/d?user=u")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag header")
	}

	// Revalidation with the matching tag: 304, no body.
	req, _ := http.NewRequest(http.MethodGet, e.ts.URL+"/doc/d?user=u", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}

	// Content changes → tag mismatch → full response with a new tag.
	reqPut, _ := http.NewRequest(http.MethodPut, e.ts.URL+"/doc/d?user=u", strings.NewReader("changed"))
	respPut, _ := http.DefaultClient.Do(reqPut)
	respPut.Body.Close()
	resp, _ = http.DefaultClient.Do(req)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "changed" {
		t.Fatalf("after change: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("ETag") == etag {
		t.Fatal("ETag did not change with content")
	}
}

func TestInvalidationVisibleThroughGateway(t *testing.T) {
	e := newEnv(t, true)
	e.addDoc(t, "d", "alice", []byte("v1"))
	e.space.AddReference("d", "bob")
	e.get(t, "d", "alice") // warm
	// Bob writes over HTTP; Alice's next GET must be fresh (MISS).
	req, _ := http.NewRequest(http.MethodPut, e.ts.URL+"/doc/d?user=bob", strings.NewReader("v2 by bob"))
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	body, hdr, _ := e.get(t, "d", "alice")
	if body != "v2 by bob" || hdr != "MISS" {
		t.Fatalf("alice got %q (%s)", body, hdr)
	}
}

// TestMetricsScrapeEndToEnd drives reads through the gateway and then
// scrapes /metrics and /debug/traces over HTTP — the full path an
// operator's Prometheus scrape takes.
func TestMetricsScrapeEndToEnd(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	o := obs.NewObserver()
	e := &env{
		src:   repo.NewMem("disk", clk, simnet.Local(1)),
		space: docspace.New(clk, nil),
	}
	e.cache = core.New(e.space, core.Options{Name: "gw", Observer: o})
	gw := New(e.space, e.cache)
	gw.EnableObservability(o)
	e.ts = httptest.NewServer(gw)
	t.Cleanup(e.ts.Close)

	e.addDoc(t, "d", "eyal", []byte("content"))
	for i := 0; i < 3; i++ {
		if _, hdr, code := e.get(t, "d", "eyal"); code != http.StatusOK {
			t.Fatalf("GET %d: status %d, header %s", i, code, hdr)
		}
	}

	resp, err := http.Get(e.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"placeless_cache_hits_total 2",
		"placeless_cache_misses_total 1",
		`placeless_reads_total{verdict="hit"} 2`,
		`placeless_reads_total{verdict="miss"} 1`,
		"placeless_read_duration_seconds_count 3",
		`placeless_read_stage_duration_seconds_count{stage="full_chain"} 1`,
		"placeless_stream_pool_gets_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	tresp, err := http.Get(e.ts.URL + "/debug/traces?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var dump obs.TraceDump
	if err := json.NewDecoder(tresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total != 3 || len(dump.Traces) != 3 {
		t.Fatalf("trace dump total=%d len=%d, want 3/3", dump.Total, len(dump.Traces))
	}
	if dump.Traces[0].Verdict != "hit" || dump.Traces[2].Verdict != "miss" {
		t.Errorf("trace verdicts newest-first = %s..%s, want hit..miss",
			dump.Traces[0].Verdict, dump.Traces[2].Verdict)
	}

	presp, err := http.Get(e.ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", presp.StatusCode)
	}
}
