// Package httpgw is an HTTP gateway onto a Placeless document space:
// it serves each user's personalized view of a document as a web
// resource, with the content cache in front of the middleware. It
// makes the paper's web-facing story concrete — the Placeless system
// subsumes per-user customization that the 1999 web did at origin
// servers ("my.yahoo.com") — and lets entirely off-the-shelf HTTP
// clients exercise the stack.
//
// Routes:
//
//	GET    /doc/{id}?user=U   the user's view of the document
//	PUT    /doc/{id}?user=U   replace content through the write path
//	GET    /stats             cache statistics (JSON)
//	GET    /docs?user=U       document ids visible to the user (JSON)
//	GET    /find?user=U&key=K[&value=V]  property-based search (JSON)
//
// EnableObservability additionally mounts /metrics (Prometheus text),
// /debug/traces (JSON read-trace ring) and /debug/pprof/ on the same
// mux.
//
// Responses carry X-Placeless-Cache: HIT|MISS (from the read's own
// entry metadata, so concurrent requests each get their own outcome)
// and X-Placeless-Cacheability headers. Under a memoizing cache, MISS
// responses add X-Placeless-Universal: MEMO|FULL — whether the
// universal transform stage was served from the intermediate store or
// executed in full.
package httpgw

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/obs"
	"placeless/internal/sig"
)

// Gateway is an http.Handler over a document space and its cache.
type Gateway struct {
	space *docspace.Space
	cache *core.Cache
	mux   *http.ServeMux
}

// New builds a gateway. cache may be nil to serve uncached.
func New(space *docspace.Space, cache *core.Cache) *Gateway {
	g := &Gateway{space: space, cache: cache, mux: http.NewServeMux()}
	g.mux.HandleFunc("/doc/", g.handleDoc)
	g.mux.HandleFunc("/docs", g.handleList)
	g.mux.HandleFunc("/find", g.handleFind)
	g.mux.HandleFunc("/stats", g.handleStats)
	return g
}

// EnableObservability mounts o's endpoints — /metrics, /debug/traces,
// /debug/pprof/ — on the gateway's mux. Pass the same Observer the
// cache was built with so the scrape covers the cache's counters. Call
// at most once.
func (g *Gateway) EnableObservability(o *obs.Observer) {
	o.Mount(g.mux)
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// statusFor maps middleware errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, docspace.ErrNoDocument), errors.Is(err, docspace.ErrNoReference):
		return http.StatusNotFound
	case errors.Is(err, core.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadGateway
	}
}

// userOf extracts the mandatory user parameter.
func userOf(w http.ResponseWriter, r *http.Request) (string, bool) {
	user := r.URL.Query().Get("user")
	if user == "" {
		http.Error(w, "missing ?user= parameter", http.StatusBadRequest)
		return "", false
	}
	return user, true
}

func (g *Gateway) handleDoc(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/doc/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "bad document id", http.StatusBadRequest)
		return
	}
	user, ok := userOf(w, r)
	if !ok {
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		g.get(w, r, id, user)
	case http.MethodPut:
		g.put(w, r, id, user)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) get(w http.ResponseWriter, r *http.Request, id, user string) {
	var data []byte
	var err error
	outcome := "BYPASS"
	universal := ""
	if g.cache != nil {
		// The hit/miss outcome comes from the read's own EntryInfo, not
		// from a before/after diff of the global counters — the counter
		// diff was only correct when requests were serialized, and the
		// gateway serves concurrent requests against the sharded cache.
		var info core.EntryInfo
		data, info, err = g.cache.ReadWithInfo(id, user)
		if err == nil {
			if info.Hit {
				outcome = "HIT"
			} else {
				outcome = "MISS"
				if info.IntermediateHit {
					universal = "MEMO"
				} else if g.cache.Memoizing() {
					universal = "FULL"
				}
			}
		}
	} else {
		data, _, err = g.space.ReadDocument(id, user)
	}
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	// The content signature doubles as a strong ETag, extending the
	// Placeless signature-sharing idea to downstream HTTP caches:
	// identical transformed content revalidates with 304 regardless
	// of which user produced it.
	etag := `"` + sig.Of(data).String() + `"`
	w.Header().Set("ETag", etag)
	if universal != "" {
		w.Header().Set("X-Placeless-Universal", universal)
	}
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.Header().Set("X-Placeless-Cache", outcome)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Placeless-Cache", outcome)
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(data)
}

func (g *Gateway) put(w http.ResponseWriter, r *http.Request, id, user string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	if g.cache != nil {
		err = g.cache.Write(id, user, body)
	} else {
		err = g.space.WriteDocument(id, user, body)
	}
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	user, ok := userOf(w, r)
	if !ok {
		return
	}
	var visible []string
	for _, doc := range g.space.Documents() {
		if _, err := g.space.ResolveOwner(doc, user); err == nil {
			visible = append(visible, doc)
		}
	}
	if visible == nil {
		visible = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(visible)
}

// findMatch is the JSON shape of one /find hit.
type findMatch struct {
	Doc   string `json:"doc"`
	Value string `json:"value,omitempty"`
	Level string `json:"level"`
}

func (g *Gateway) handleFind(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	user, ok := userOf(w, r)
	if !ok {
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing ?key= parameter", http.StatusBadRequest)
		return
	}
	matches := []findMatch{}
	for _, m := range g.space.FindByStatic(user, key, r.URL.Query().Get("value")) {
		matches = append(matches, findMatch{Doc: m.Doc, Value: m.Value, Level: m.Level.String()})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(matches)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if g.cache == nil {
		io.WriteString(w, "{}\n")
		return
	}
	json.NewEncoder(w).Encode(g.cache.Stats())
}
