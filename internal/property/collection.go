package property

import (
	"sort"
	"sync"

	"placeless/internal/event"
	"placeless/internal/stream"
)

// Collection groups related documents — the paper's §5 open question:
// "mechanisms that tailor caching for related documents (e.g.,
// contained in a collection) have not been investigated." The same
// Collection value is attached (universally) to each member; on any
// member's read path it declares the sibling members related, which a
// prefetching cache turns into warm entries before the user opens
// them.
type Collection struct {
	Base
	mu      sync.Mutex
	members map[string]bool
}

var _ Active = (*Collection)(nil)

// NewCollection returns a collection property with the given name and
// initial members.
func NewCollection(name string, members ...string) *Collection {
	c := &Collection{Base: Base{PropName: "collection:" + name}, members: make(map[string]bool)}
	for _, m := range members {
		c.Add(m)
	}
	return c
}

// Add inserts a member document id.
func (c *Collection) Add(doc string) {
	if doc == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members[doc] = true
}

// Remove deletes a member; removing an absent member is a no-op.
func (c *Collection) Remove(doc string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.members, doc)
}

// Members lists the collection, sorted.
func (c *Collection) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.members))
	for m := range c.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Events implements Active.
func (*Collection) Events() []event.Kind { return []event.Kind{event.GetInputStream} }

// WrapInput implements Active: declares the sibling members related
// and leaves the content untouched.
func (c *Collection) WrapInput(ctx *ReadContext) stream.InputWrapper {
	for _, m := range c.Members() {
		ctx.AddRelated(m) // AddRelated drops the document itself
	}
	return nil
}
