package property_test

import (
	"fmt"
	"time"

	"placeless/internal/property"
	"placeless/internal/stream"
)

// Example shows an active property's read-path interposition: the
// translator wraps the raw stream and rewrites content flowing to the
// application, voting and costing through the ReadContext.
func Example() {
	translator := property.NewTranslator(3 * time.Millisecond)

	rc := &property.ReadContext{Doc: "paper", User: "marie", Sleep: func(time.Duration) {}}
	wrapper := translator.WrapInput(rc)

	raw := stream.BytesReader([]byte("the active document system"))
	out, _ := stream.ReadAllAndClose(stream.ChainInput(raw, wrapper))
	res := rc.Result()

	fmt.Printf("content: %s\n", out)
	fmt.Printf("replacement cost: %v, cacheability: %v\n", res.Cost, res.Cacheability)
	// Output:
	// content: le actif document système
	// replacement cost: 3ms, cacheability: unrestricted
}

// ExampleVerifier shows the portfolio-page policy: a Threshold
// verifier tolerates insignificant changes in an external source.
func ExampleVerifier() {
	quote := property.NewExternalVar("XRX", 55.00)
	v := property.Threshold{
		VerifierName: "XRX",
		Source:       quote.Value,
		Reference:    55.00,
		Tolerance:    1.00,
	}

	quote.Set(55.40)
	ok, _ := v.Check(time.Time{})
	fmt.Println("after +0.40:", ok)

	quote.Set(58.75)
	ok, _ = v.Check(time.Time{})
	fmt.Println("after +3.75:", ok)
	// Output:
	// after +0.40: true
	// after +3.75: false
}
