package property

import (
	"bytes"
	"testing"
	"time"
)

// memoProbe exercises every standard transform: misspellings for the
// spell corrector, translatable words, multiple lines for the
// summarizer and line numberer, mixed case for the uppercaser.
var memoProbe = []byte("Teh document is recieve and seperate.\n" +
	"hello world of active caching\n" +
	"the property system is cacheable\n" +
	"fourth line with a Document\n" +
	"fifth and final line\n")

// standardMemoizables returns one instance of every standard transform
// that opts into memoization.
func standardMemoizables() map[string]*Transformer {
	return map[string]*Transformer{
		"spell-correct": NewSpellCorrector(0),
		"translate-fr":  NewTranslator(0),
		"summarize":     NewSummarizer(3, 0),
		"uppercase":     NewUppercaser(0),
		"watermark":     NewWatermarker("eyal", 0),
		"rot13":         NewRot13(0),
		"line-number":   NewLineNumberer(0),
	}
}

func TestStandardTransformsOptIntoMemoization(t *testing.T) {
	for name, tr := range standardMemoizables() {
		key, ok := tr.MemoKey()
		if !ok || key == "" {
			t.Errorf("%s: MemoKey() = (%q, %v), want a non-empty opt-in key", name, key, ok)
		}
	}
}

// TestMemoizableTransformsArePure is the memoizability contract for
// every standard transform that opts in: the read transform must not
// mutate its input, must be deterministic, and its output must not
// alias the input slice (the caller may recycle the input buffer).
func TestMemoizableTransformsArePure(t *testing.T) {
	for name, tr := range standardMemoizables() {
		input := append([]byte{}, memoProbe...)
		snapshot := append([]byte{}, memoProbe...)

		out1 := tr.ReadTransform(input)
		if !bytes.Equal(input, snapshot) {
			t.Errorf("%s: transform mutated its input", name)
		}

		out2 := tr.ReadTransform(append([]byte{}, memoProbe...))
		if !bytes.Equal(out1, out2) {
			t.Errorf("%s: transform is not deterministic: %q vs %q", name, out1, out2)
		}

		frozen := append([]byte{}, out1...)
		for i := range input {
			input[i] = '#'
		}
		if !bytes.Equal(out1, frozen) {
			t.Errorf("%s: transform output aliases its input slice", name)
		}
	}
}

func TestMemoKeyIgnoresExecCost(t *testing.T) {
	cheap := NewSpellCorrector(time.Microsecond)
	dear := NewSpellCorrector(5 * time.Second)
	kc, _ := cheap.MemoKey()
	kd, _ := dear.MemoKey()
	if kc != kd {
		t.Fatalf("ExecCost changed the memo key: %q vs %q (cost shapes replacement, not bytes)", kc, kd)
	}
}

func TestMemoKeyTracksVersion(t *testing.T) {
	tr := NewSpellCorrector(0)
	k1, _ := tr.MemoKey()
	tr.Version = 2 // the paper's spelling-corrector upgrade
	k2, _ := tr.MemoKey()
	if k1 == k2 {
		t.Fatal("version upgrade did not change the memo key")
	}
}

func TestMemoKeyTracksConfiguration(t *testing.T) {
	k3, _ := NewSummarizer(3, 0).MemoKey()
	k5, _ := NewSummarizer(5, 0).MemoKey()
	if k3 == k5 {
		t.Fatal("summarizer line count did not change the memo key")
	}
	wa, _ := NewWatermarker("eyal", 0).MemoKey()
	wb, _ := NewWatermarker("paul", 0).MemoKey()
	if wa == wb {
		t.Fatal("watermark banner did not change the memo key")
	}
	spell, _ := NewSpellCorrector(0).MemoKey()
	trans, _ := NewTranslator(0).MemoKey()
	if spell == trans {
		t.Fatal("different dictionaries share a memo key")
	}
}

func TestEmptyMemoIDMeansNotMemoizable(t *testing.T) {
	// The default for hand-built transformers is NOT memoizable; a
	// transform must explicitly declare its behaviour digest.
	tr := &Transformer{Base: Base{PropName: "custom"}, ReadTransform: bytes.ToUpper, Version: 1}
	if key, ok := tr.MemoKey(); ok {
		t.Fatalf("MemoKey() = (%q, true) without a MemoID; memoization must be opt-in", key)
	}
}

func TestExternalInfoIsNotMemoizable(t *testing.T) {
	// Properties embedding external information (paper invalidation
	// cause 4) must never satisfy the memo contract: their output can
	// change with no property-mutation event.
	var p Active = NewExternalInfo(NewExternalVar("stock", 42), ByVerifier, 0)
	if m, ok := p.(Memoizable); ok {
		if key, memoOK := m.MemoKey(); memoOK {
			t.Fatalf("ExternalInfo reports memoizable key %q", key)
		}
	}
}
