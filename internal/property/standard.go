package property

import (
	"bytes"
	"crypto/md5"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"placeless/internal/event"
	"placeless/internal/stream"
)

// Transformer is an active property that rewrites content on the read
// path, the write path, or both — the paper's "translate to French",
// "summary", and "spell correct" class of property. Each execution
// charges ExecCost of simulated time and contributes it to the
// entry's replacement cost.
type Transformer struct {
	Base
	// ReadTransform rewrites content flowing to the application; nil
	// leaves the read path alone.
	ReadTransform stream.Transform
	// WriteTransform rewrites content flowing to storage; nil leaves
	// the write path alone.
	WriteTransform stream.Transform
	// ExecCost is the simulated execution time per invocation.
	ExecCost time.Duration
	// CacheVote is this property's cacheability vote (zero value
	// Unrestricted).
	CacheVote Cacheability
	// Version models the property's release; upgrading it triggers
	// modifyProperty-based invalidation (paper §3: "If Eyal were to
	// upgrade his spelling corrector to a new release, this would
	// trigger an invalidation").
	Version int
	// MemoID, when non-empty, declares ReadTransform memoizable: a
	// pure function of the input bytes whose behaviour is fully
	// captured by (PropName, Version, MemoID). Constructors derive it
	// from the configuration that shapes output bytes (dictionary
	// digests, line counts, banners). Leave empty for transforms
	// whose output depends on anything beyond the input — the cache
	// then re-executes the stage on every read (paper cause 4).
	MemoID string
}

var (
	_ Active     = (*Transformer)(nil)
	_ Memoizable = (*Transformer)(nil)
)

// MemoKey implements Memoizable. ExecCost is deliberately excluded:
// it shapes replacement cost, not output bytes.
func (t *Transformer) MemoKey() (string, bool) {
	if t.MemoID == "" {
		return "", false
	}
	return t.PropName + "/v" + strconv.Itoa(t.Version) + "/" + t.MemoID, true
}

// tableDigest summarizes a word-replacement table for memo keys:
// digests every (word, replacement) pair in sorted order, so two
// properties share a key exactly when their dictionaries match.
func tableDigest(table map[string]string) string {
	h := md5.New()
	for _, w := range SortedWords(table) {
		fmt.Fprintf(h, "%s\x00%s\x00", w, table[w])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Events implements Active.
func (t *Transformer) Events() []event.Kind {
	var ks []event.Kind
	if t.ReadTransform != nil {
		ks = append(ks, event.GetInputStream)
	}
	if t.WriteTransform != nil {
		ks = append(ks, event.GetOutputStream)
	}
	return ks
}

// WrapInput implements Active: charges execution cost and applies the
// read transform.
func (t *Transformer) WrapInput(ctx *ReadContext) stream.InputWrapper {
	if t.ReadTransform == nil {
		return nil
	}
	ctx.Vote(t.CacheVote)
	ctx.AddCost(t.ExecCost)
	f, cost, sleep := t.ReadTransform, t.ExecCost, ctx.Sleep
	return stream.WholeInput(func(b []byte) []byte {
		if sleep != nil && cost > 0 {
			sleep(cost)
		}
		return f(b)
	})
}

// WrapOutput implements Active: charges execution cost and applies the
// write transform.
func (t *Transformer) WrapOutput(ctx *WriteContext) stream.OutputWrapper {
	if t.WriteTransform == nil {
		return nil
	}
	ctx.Vote(t.CacheVote)
	f, cost, sleep := t.WriteTransform, t.ExecCost, ctx.Sleep
	return stream.WholeOutput(func(b []byte) []byte {
		if sleep != nil && cost > 0 {
			sleep(cost)
		}
		return f(b)
	})
}

// wordMap rewrites whole words according to a replacement table,
// preserving non-word bytes. Capitalized forms are handled by
// lowercasing the lookup and re-capitalizing the replacement.
func wordMap(table map[string]string) stream.Transform {
	return func(b []byte) []byte {
		var out bytes.Buffer
		word := make([]byte, 0, 32)
		flush := func() {
			if len(word) == 0 {
				return
			}
			w := string(word)
			repl, ok := table[strings.ToLower(w)]
			if !ok {
				out.Write(word)
			} else {
				if w[0] >= 'A' && w[0] <= 'Z' && len(repl) > 0 {
					repl = strings.ToUpper(repl[:1]) + repl[1:]
				}
				out.WriteString(repl)
			}
			word = word[:0]
		}
		for _, c := range b {
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				word = append(word, c)
			} else {
				flush()
				out.WriteByte(c)
			}
		}
		flush()
		return out.Bytes()
	}
}

// DefaultMisspellings is the demonstration dictionary used by
// NewSpellCorrector.
var DefaultMisspellings = map[string]string{
	"teh":        "the",
	"recieve":    "receive",
	"occured":    "occurred",
	"seperate":   "separate",
	"definately": "definitely",
	"adress":     "address",
	"documnet":   "document",
	"cachable":   "cacheable",
}

// NewSpellCorrector returns the paper's spelling-corrector property:
// it fixes known misspellings on both the read and write paths (the
// example registers it for getInputStream and getOutputStream).
func NewSpellCorrector(cost time.Duration) *Transformer {
	f := wordMap(DefaultMisspellings)
	return &Transformer{
		Base:           Base{PropName: "spell-correct"},
		ReadTransform:  f,
		WriteTransform: f,
		ExecCost:       cost,
		Version:        1,
		MemoID:         "dict:" + tableDigest(DefaultMisspellings),
	}
}

// DefaultFrench is the demonstration English→French dictionary used by
// NewTranslator.
var DefaultFrench = map[string]string{
	"the":      "le",
	"a":        "un",
	"document": "document",
	"cache":    "cache",
	"paper":    "papier",
	"hello":    "bonjour",
	"world":    "monde",
	"is":       "est",
	"and":      "et",
	"of":       "de",
	"workshop": "atelier",
	"property": "propriété",
	"active":   "actif",
	"caching":  "mise-en-cache",
	"with":     "avec",
	"system":   "système",
}

// NewTranslator returns the paper's "translate to French" property: a
// read-path word-substitution translation.
func NewTranslator(cost time.Duration) *Transformer {
	return &Transformer{
		Base:          Base{PropName: "translate-fr"},
		ReadTransform: wordMap(DefaultFrench),
		ExecCost:      cost,
		Version:       1,
		MemoID:        "dict:" + tableDigest(DefaultFrench),
	}
}

// NewSummarizer returns the paper's "summary" property: the read path
// yields only the first n lines of the document plus an elision
// marker.
func NewSummarizer(n int, cost time.Duration) *Transformer {
	if n < 1 {
		n = 1
	}
	return &Transformer{
		Base: Base{PropName: fmt.Sprintf("summarize-%d", n)},
		ReadTransform: func(b []byte) []byte {
			lines := bytes.SplitAfter(b, []byte("\n"))
			if len(lines) <= n {
				return append([]byte{}, b...)
			}
			out := bytes.Join(lines[:n], nil)
			return append(out, []byte("[...]\n")...)
		},
		ExecCost: cost,
		Version:  1,
		MemoID:   "head:" + strconv.Itoa(n),
	}
}

// NewUppercaser returns a trivial read-path transform, useful as a
// cheap distinguishable personalization in tests and experiments.
func NewUppercaser(cost time.Duration) *Transformer {
	return &Transformer{
		Base:          Base{PropName: "uppercase"},
		ReadTransform: bytes.ToUpper,
		ExecCost:      cost,
		Version:       1,
		MemoID:        "upper",
	}
}

// NewWatermarker returns a read-path property appending a per-user
// banner, guaranteeing per-user distinct content (the worst case for
// shared caching, exercised in experiment E3).
func NewWatermarker(user string, cost time.Duration) *Transformer {
	banner := []byte("\n-- retrieved for " + user + " --\n")
	return &Transformer{
		Base: Base{PropName: "watermark:" + user},
		ReadTransform: func(b []byte) []byte {
			return append(append([]byte{}, b...), banner...)
		},
		ExecCost: cost,
		Version:  1,
		MemoID:   "banner:" + user,
	}
}

// NewRot13 returns a toy encryption property: rot13 on the write path,
// rot13 on the read path (self-inverse), demonstrating symmetric
// read/write chains.
func NewRot13(cost time.Duration) *Transformer {
	rot := func(b []byte) []byte {
		out := make([]byte, len(b))
		for i, c := range b {
			switch {
			case c >= 'a' && c <= 'z':
				out[i] = 'a' + (c-'a'+13)%26
			case c >= 'A' && c <= 'Z':
				out[i] = 'A' + (c-'A'+13)%26
			default:
				out[i] = c
			}
		}
		return out
	}
	return &Transformer{
		Base:           Base{PropName: "rot13"},
		ReadTransform:  rot,
		WriteTransform: rot,
		ExecCost:       cost,
		Version:        1,
		MemoID:         "rot13",
	}
}

// NewLineNumberer returns a read-path property prefixing each line
// with its number; order-sensitive with respect to summarization,
// which makes it the canonical demonstration of invalidation cause 3
// (property reordering changes content).
func NewLineNumberer(cost time.Duration) *Transformer {
	return &Transformer{
		Base: Base{PropName: "line-number"},
		ReadTransform: func(b []byte) []byte {
			if len(b) == 0 {
				return nil
			}
			var out bytes.Buffer
			for i, line := range bytes.SplitAfter(b, []byte("\n")) {
				if len(line) == 0 {
					continue
				}
				fmt.Fprintf(&out, "%4d  ", i+1)
				out.Write(line)
			}
			return out.Bytes()
		},
		ExecCost: cost,
		Version:  1,
		MemoID:   "linenum",
	}
}

// SortedWords returns the keys of a word table in sorted order; a
// helper for deterministic docs/tests.
func SortedWords(table map[string]string) []string {
	words := make([]string, 0, len(table))
	for w := range table {
		words = append(words, w)
	}
	sort.Strings(words)
	return words
}
