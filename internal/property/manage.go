package property

import (
	"fmt"
	"sync"
	"time"

	"placeless/internal/event"
	"placeless/internal/repo"
	"placeless/internal/stream"
)

// Versioning is the paper's universal versioning property: each time
// the document is opened for writing, it parks a copy of the existing
// content in an archive and attaches a static property to the base
// linking to that copy.
type Versioning struct {
	Base
	mu    sync.Mutex
	count int
}

// NewVersioning returns a versioning property.
func NewVersioning() *Versioning { return &Versioning{Base: Base{PropName: "versioning"}} }

// Events implements Active.
func (*Versioning) Events() []event.Kind { return []event.Kind{event.GetOutputStream} }

// OnEvent implements Active: on getOutputStream it snapshots the
// current content and archives it.
func (v *Versioning) OnEvent(ctx *EventContext, e event.Event) {
	if e.Kind != event.GetOutputStream || ctx.ReadCurrent == nil || ctx.StoreAside == nil {
		return
	}
	data, err := ctx.ReadCurrent()
	if err != nil {
		return // nothing to version yet
	}
	v.mu.Lock()
	v.count++
	n := v.count
	v.mu.Unlock()
	label := fmt.Sprintf("version-%d", n)
	where, err := ctx.StoreAside(label, data)
	if err != nil {
		return
	}
	if ctx.AttachStatic != nil {
		ctx.AttachStatic(label, where)
	}
}

// SavedVersions reports how many snapshots this property has archived.
func (v *Versioning) SavedVersions() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.count
}

// Replicator is the paper's replication property ("keep at home and
// the office"): driven by timer events, it copies the document content
// to a second repository once per interval — "assuming that Eyal's
// replication between PARC and Rice occurs only once at the end of the
// day".
type Replicator struct {
	Base
	// Target is the destination repository; TargetPath the location
	// written there.
	Target     repo.Repository
	TargetPath string
	// Interval is the replication period.
	Interval time.Duration

	mu   sync.Mutex
	runs int
	errs int
}

// NewReplicator returns a replication property copying to target at
// the given interval.
func NewReplicator(target repo.Repository, targetPath string, interval time.Duration) *Replicator {
	return &Replicator{
		Base:       Base{PropName: "replicate:" + target.Name()},
		Target:     target,
		TargetPath: targetPath,
		Interval:   interval,
	}
}

// Events implements Active: the replicator wakes on its own
// attachment (to arm the first timer) and on timer events.
func (*Replicator) Events() []event.Kind { return []event.Kind{event.SetProperty, event.Timer} }

// OnEvent implements Active.
func (r *Replicator) OnEvent(ctx *EventContext, e event.Event) {
	switch e.Kind {
	case event.SetProperty:
		if e.Property == r.Name() && ctx.ScheduleTimer != nil {
			ctx.ScheduleTimer(r.Interval)
		}
	case event.Timer:
		if e.Property != r.Name() {
			return
		}
		r.replicate(ctx)
		if ctx.ScheduleTimer != nil {
			ctx.ScheduleTimer(r.Interval)
		}
	}
}

func (r *Replicator) replicate(ctx *EventContext) {
	r.mu.Lock()
	r.runs++
	r.mu.Unlock()
	if ctx.ReadCurrent == nil {
		return
	}
	data, err := ctx.ReadCurrent()
	if err == nil {
		err = r.Target.Store(r.TargetPath, data)
	}
	if err != nil {
		r.mu.Lock()
		r.errs++
		r.mu.Unlock()
	}
}

// Runs reports (attempted, failed) replication cycles.
func (r *Replicator) Runs() (runs, errs int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs, r.errs
}

// AuditRecord is one entry in a read-audit trail.
type AuditRecord struct {
	// Time is when the access occurred.
	Time time.Time
	// User is the accessing reference owner.
	User string
	// Kind is the audited operation.
	Kind event.Kind
	// Forwarded marks records produced by cache-forwarded events
	// rather than full read-path executions.
	Forwarded bool
}

// AuditTrail is the paper's read-audit-trail property: it "only needs
// to know when read operations occur, but does not need to receive the
// actual content being read". It therefore votes CacheWithEvents —
// content may be cached, but the cache must keep forwarding operation
// events so the trail stays complete on hits.
type AuditTrail struct {
	Base
	mu      sync.Mutex
	records []AuditRecord
}

// NewAuditTrail returns an empty audit trail property.
func NewAuditTrail() *AuditTrail { return &AuditTrail{Base: Base{PropName: "audit-trail"}} }

// Events implements Active.
func (*AuditTrail) Events() []event.Kind {
	return []event.Kind{event.GetInputStream, event.GetOutputStream}
}

// OnEvent implements Active by recording the access. Events forwarded
// by a cache carry Detail "forwarded".
func (a *AuditTrail) OnEvent(ctx *EventContext, e event.Event) {
	if e.Kind != event.GetInputStream && e.Kind != event.GetOutputStream {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.records = append(a.records, AuditRecord{
		Time:      e.Time,
		User:      e.User,
		Kind:      e.Kind,
		Forwarded: e.Detail == "forwarded",
	})
}

// WrapInput implements Active: no interception, but the trail requires
// operation events to keep flowing, hence the CacheWithEvents vote.
func (a *AuditTrail) WrapInput(ctx *ReadContext) stream.InputWrapper {
	ctx.Vote(CacheWithEvents)
	return nil
}

// WrapOutput implements Active: the trail audits writes too, so a
// write-back cache must forward getOutputStream operations (paper §3:
// write-path properties "should set the cacheability indicator so that
// getOutputStream operations get forwarded").
func (a *AuditTrail) WrapOutput(ctx *WriteContext) stream.OutputWrapper {
	ctx.Vote(CacheWithEvents)
	return nil
}

// Records returns a copy of the trail.
func (a *AuditTrail) Records() []AuditRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AuditRecord, len(a.records))
	copy(out, a.records)
	return out
}

// QoS is a Quality-of-Service property such as "access time < .25
// seconds" (paper §5). It influences cache replacement by inflating
// the document's replacement cost, making eviction less likely, and
// records its latency target for harnesses that check compliance.
type QoS struct {
	Base
	// MaxLatency is the access-time requirement being expressed.
	MaxLatency time.Duration
	// CostFactor scales the replacement cost accumulated by the rest
	// of the read path (applied when this property runs; attach QoS
	// at the reference so it runs last and scales the whole path).
	CostFactor float64
	// CostFloor, if positive, raises the replacement cost to at
	// least this value.
	CostFloor time.Duration
}

// NewQoS returns a QoS property with the given latency target and
// cost inflation factor.
func NewQoS(maxLatency time.Duration, factor float64) *QoS {
	return &QoS{
		Base:       Base{PropName: fmt.Sprintf("qos<%v", maxLatency)},
		MaxLatency: maxLatency,
		CostFactor: factor,
	}
}

// Events implements Active.
func (*QoS) Events() []event.Kind { return []event.Kind{event.GetInputStream} }

// WrapInput implements Active: inflates replacement cost, intercepts
// nothing.
func (q *QoS) WrapInput(ctx *ReadContext) stream.InputWrapper {
	if q.CostFactor > 1 {
		ctx.ScaleCost(q.CostFactor)
	}
	if q.CostFloor > 0 {
		ctx.FloorCost(q.CostFloor)
	}
	return nil
}

// Notifier is an active property used to invalidate cache entries for
// changes through the Placeless system (paper §3). A cache attaches
// notifiers to the base document (content writes and universal
// property mutations) and to each reference it serves (personal
// property mutations). Notifiers subsume semantic callbacks: an
// optional predicate filters which events trigger notification.
type Notifier struct {
	Base
	// Kinds are the event kinds that trigger notification.
	Kinds []event.Kind
	// Predicate, if non-nil, filters events (semantic callback);
	// only events for which it returns true notify.
	Predicate func(e event.Event) bool
	// Notify delivers the invalidation to the cache.
	Notify func(e event.Event)

	mu   sync.Mutex
	sent int
	seen int
}

// NewNotifier builds a notifier named name that calls notify for every
// event of the given kinds.
func NewNotifier(name string, notify func(e event.Event), kinds ...event.Kind) *Notifier {
	return &Notifier{Base: Base{PropName: name}, Kinds: kinds, Notify: notify}
}

// Events implements Active.
func (n *Notifier) Events() []event.Kind { return n.Kinds }

// OnEvent implements Active: applies the predicate and notifies.
// Events about the notifier itself (its own attachment/removal) are
// ignored so installing cache machinery does not invalidate the cache.
func (n *Notifier) OnEvent(ctx *EventContext, e event.Event) {
	if e.Property == n.Name() {
		return
	}
	n.mu.Lock()
	n.seen++
	n.mu.Unlock()
	if n.Predicate != nil && !n.Predicate(e) {
		return
	}
	n.mu.Lock()
	n.sent++
	n.mu.Unlock()
	if n.Notify != nil {
		n.Notify(e)
	}
}

// Counts reports (events seen, notifications sent).
func (n *Notifier) Counts() (seen, sent int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seen, n.sent
}
