package property

import (
	"io"
	"time"

	"placeless/internal/repo"
	"placeless/internal/stream"
)

// RepoBitProvider links a base document to content stored in a
// repository. On reads it seeds the cache-facing read result the way
// the paper describes for bit-providers: it initializes the
// replacement cost with the retrieval cost, returns the
// source-appropriate verifier (TTL when the source advertises one,
// otherwise an mtime poll), and casts the source's cacheability vote.
type RepoBitProvider struct {
	// Repo is the content source; Path the document's location in it.
	Repo repo.Repository
	Path string
	// Vote is the provider's cacheability vote; sources whose
	// content changes every access (live feeds) should set
	// Uncacheable. Zero value is Unrestricted.
	Vote Cacheability
	// DisableVerifier suppresses verifier creation, for experiments
	// isolating notifier-only consistency.
	DisableVerifier bool
}

var _ BitProvider = (*RepoBitProvider)(nil)

// Name implements BitProvider.
func (p *RepoBitProvider) Name() string { return "bits:" + p.Repo.Name() + ":" + p.Path }

// Open implements BitProvider: it fetches the content, charges the
// retrieval cost, and registers verifier/vote/cost on the context.
func (p *RepoBitProvider) Open(ctx *ReadContext) (io.ReadCloser, error) {
	fr, err := p.Repo.Fetch(p.Path)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		ctx.AddCost(fr.Cost)
		ctx.Vote(p.Vote)
		if !p.DisableVerifier {
			if fr.Meta.TTL > 0 {
				ctx.AddVerifier(NewTTLVerifier(ctx.Now, fr.Meta.TTL))
			} else {
				ctx.AddVerifier(MTimeVerifier{
					Repo:    p.Repo,
					Path:    p.Path,
					ModTime: fr.Meta.ModTime,
					Version: fr.Meta.Version,
				})
			}
		}
	}
	return stream.BytesReader(fr.Data), nil
}

// Create implements BitProvider: writes buffered by the returned sink
// are stored back to the repository when the sink closes.
func (p *RepoBitProvider) Create(ctx *WriteContext) (io.WriteCloser, error) {
	return &storeCloser{provider: p}, nil
}

// storeCloser buffers the composed write-path output and stores it on
// Close.
type storeCloser struct {
	stream.BufferCloser
	provider *RepoBitProvider
	storeErr error
}

// Close stores the buffered content into the repository.
func (s *storeCloser) Close() error {
	if s.Closed {
		return s.storeErr
	}
	s.BufferCloser.Close()
	s.storeErr = s.provider.Repo.Store(s.provider.Path, s.Bytes())
	return s.storeErr
}

// ReadCurrent implements BitProvider.
func (p *RepoBitProvider) ReadCurrent() ([]byte, error) {
	fr, err := p.Repo.Fetch(p.Path)
	if err != nil {
		return nil, err
	}
	return fr.Data, nil
}

// ComposedBitProvider assembles a document from several sources — the
// paper's news-summary example. It concatenates the parts (with a
// separator) and returns a Composite verifier covering every source.
type ComposedBitProvider struct {
	// ProviderName labels the composition.
	ProviderName string
	// Parts are the underlying sources, in composition order.
	Parts []*RepoBitProvider
	// Separator is inserted between parts.
	Separator []byte
}

var _ BitProvider = (*ComposedBitProvider)(nil)

// Name implements BitProvider.
func (c *ComposedBitProvider) Name() string { return "composed:" + c.ProviderName }

// Open implements BitProvider by fetching every part. Each part
// contributes its retrieval cost and verifier; the verifiers are
// folded into one Composite so the cache sees a single unit.
func (c *ComposedBitProvider) Open(ctx *ReadContext) (io.ReadCloser, error) {
	sub := &ReadContext{Doc: ctx.Doc, User: ctx.User, Now: ctx.Now, Sleep: ctx.Sleep}
	var out []byte
	for i, part := range c.Parts {
		if i > 0 {
			out = append(out, c.Separator...)
		}
		r, err := part.Open(sub)
		if err != nil {
			return nil, err
		}
		data, err := stream.ReadAllAndClose(r)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	res := sub.Result()
	ctx.AddCost(res.Cost)
	ctx.Vote(res.Cacheability)
	if len(res.Verifiers) > 0 {
		ctx.AddVerifier(Composite{Parts: res.Verifiers})
	}
	return stream.BytesReader(out), nil
}

// Create implements BitProvider; composed documents are read-only.
func (c *ComposedBitProvider) Create(*WriteContext) (io.WriteCloser, error) {
	return nil, repo.ErrReadOnly
}

// ReadCurrent implements BitProvider.
func (c *ComposedBitProvider) ReadCurrent() ([]byte, error) {
	noSleep := func(time.Duration) {}
	r, err := c.Open(&ReadContext{Sleep: noSleep})
	if err != nil {
		return nil, err
	}
	return stream.ReadAllAndClose(r)
}
