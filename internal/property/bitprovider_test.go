package property

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/repo"
	"placeless/internal/simnet"
	"placeless/internal/stream"
)

func TestRepoBitProviderOpenSeedsContext(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	p := simnet.NewPath("lan", 1, simnet.Link{Latency: 5 * time.Millisecond})
	m := repo.NewMem("mem", clk, p)
	m.Store("/doc", []byte("bits"))

	bp := &RepoBitProvider{Repo: m, Path: "/doc"}
	rc := &ReadContext{Now: clk.Now()}
	r, err := bp.Open(rc)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := stream.ReadAllAndClose(r)
	if string(data) != "bits" {
		t.Fatalf("data = %q", data)
	}
	res := rc.Result()
	if res.Cost != 5*time.Millisecond {
		t.Fatalf("cost = %v, want retrieval cost 5ms", res.Cost)
	}
	if len(res.Verifiers) != 1 || !strings.Contains(res.Verifiers[0].Name(), "mtime") {
		t.Fatalf("verifiers = %v, want one mtime verifier", res.Verifiers)
	}
	if res.Cacheability != Unrestricted {
		t.Fatalf("vote = %v", res.Cacheability)
	}
}

func TestRepoBitProviderTTLSource(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	w := repo.NewWeb("web", clk, simnet.NewPath("p", 1), 30*time.Second, true)
	w.SetPage("/page", []byte("<html>"))
	bp := &RepoBitProvider{Repo: w, Path: "/page"}
	rc := &ReadContext{Now: clk.Now()}
	if _, err := bp.Open(rc); err != nil {
		t.Fatal(err)
	}
	vs := rc.Result().Verifiers
	if len(vs) != 1 || vs[0].Name() != "ttl" {
		t.Fatalf("verifiers = %v, want TTL for a web source", vs)
	}
	if ok, _ := vs[0].Check(clk.Now().Add(29 * time.Second)); !ok {
		t.Fatal("TTL verifier rejected fresh entry")
	}
	if ok, _ := vs[0].Check(clk.Now().Add(31 * time.Second)); ok {
		t.Fatal("TTL verifier accepted expired entry")
	}
}

func TestRepoBitProviderUncacheableVote(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	feed := repo.NewLiveFeed("cam", clk, simnet.NewPath("p", 1), 64)
	bp := &RepoBitProvider{Repo: feed, Path: "/cam1", Vote: Uncacheable, DisableVerifier: true}
	rc := &ReadContext{Now: clk.Now()}
	if _, err := bp.Open(rc); err != nil {
		t.Fatal(err)
	}
	res := rc.Result()
	if res.Cacheability != Uncacheable {
		t.Fatalf("vote = %v", res.Cacheability)
	}
	if len(res.Verifiers) != 0 {
		t.Fatal("DisableVerifier ignored")
	}
}

func TestRepoBitProviderOpenNotFound(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	m := repo.NewMem("mem", clk, simnet.NewPath("p", 1))
	bp := &RepoBitProvider{Repo: m, Path: "/missing"}
	if _, err := bp.Open(&ReadContext{}); !errors.Is(err, repo.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRepoBitProviderCreateStoresOnClose(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	m := repo.NewMem("mem", clk, simnet.NewPath("p", 1))
	bp := &RepoBitProvider{Repo: m, Path: "/new"}
	w, err := bp.Create(&WriteContext{})
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "written ")
	io.WriteString(w, "in parts")
	if _, err := m.Fetch("/new"); !errors.Is(err, repo.ErrNotFound) {
		t.Fatal("content visible before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := m.Fetch("/new")
	if err != nil || string(fr.Data) != "written in parts" {
		t.Fatalf("stored = %q, %v", fr.Data, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestRepoBitProviderCreateReadOnlyRepo(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	web := repo.NewWeb("web", clk, simnet.NewPath("p", 1), time.Minute, true)
	bp := &RepoBitProvider{Repo: web, Path: "/p"}
	w, err := bp.Create(&WriteContext{})
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("x"))
	if err := w.Close(); !errors.Is(err, repo.ErrReadOnly) {
		t.Fatalf("Close err = %v, want ErrReadOnly surfaced", err)
	}
}

func TestRepoBitProviderReadCurrent(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	m := repo.NewMem("mem", clk, simnet.NewPath("p", 1))
	m.Store("/d", []byte("now"))
	bp := &RepoBitProvider{Repo: m, Path: "/d"}
	data, err := bp.ReadCurrent()
	if err != nil || string(data) != "now" {
		t.Fatalf("ReadCurrent = %q, %v", data, err)
	}
}

func TestComposedBitProvider(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	p := simnet.NewPath("lan", 1, simnet.Link{Latency: time.Millisecond})
	m1 := repo.NewMem("s1", clk, p)
	m2 := repo.NewMem("s2", clk, p)
	m1.Store("/a", []byte("headline A"))
	m2.Store("/b", []byte("headline B"))

	c := &ComposedBitProvider{
		ProviderName: "news",
		Parts: []*RepoBitProvider{
			{Repo: m1, Path: "/a"},
			{Repo: m2, Path: "/b"},
		},
		Separator: []byte("\n---\n"),
	}
	rc := &ReadContext{Now: clk.Now()}
	r, err := c.Open(rc)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := stream.ReadAllAndClose(r)
	if string(data) != "headline A\n---\nheadline B" {
		t.Fatalf("composed = %q", data)
	}
	res := rc.Result()
	if res.Cost != 2*time.Millisecond {
		t.Fatalf("cost = %v, want both retrievals", res.Cost)
	}
	if len(res.Verifiers) != 1 || !strings.Contains(res.Verifiers[0].Name(), "composite") {
		t.Fatalf("verifiers = %v, want one composite", res.Verifiers)
	}
	// Composite verifier tracks each source: changing either part
	// invalidates.
	if ok, _ := res.Verifiers[0].Check(clk.Now()); !ok {
		t.Fatal("fresh composite invalid")
	}
	m2.UpdateDirect("/b", []byte("headline B v2"))
	if ok, _ := res.Verifiers[0].Check(clk.Now()); ok {
		t.Fatal("composite missed a changed source")
	}
}

func TestComposedBitProviderReadOnly(t *testing.T) {
	c := &ComposedBitProvider{ProviderName: "news"}
	if _, err := c.Create(&WriteContext{}); !errors.Is(err, repo.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
}

func TestComposedBitProviderPartError(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	m := repo.NewMem("s", clk, simnet.NewPath("p", 1))
	c := &ComposedBitProvider{Parts: []*RepoBitProvider{{Repo: m, Path: "/gone"}}}
	if _, err := c.Open(&ReadContext{}); !errors.Is(err, repo.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.ReadCurrent(); err == nil {
		t.Fatal("ReadCurrent swallowed part error")
	}
}
