package property

import (
	"bytes"
	"testing"

	"placeless/internal/stream"
)

// applyRead pushes content through a property's read wrapper.
func applyRead(t *testing.T, p Active, content []byte) []byte {
	t.Helper()
	rc := &ReadContext{}
	out, err := stream.ReadAllAndClose(stream.ChainInput(stream.BytesReader(content), p.WrapInput(rc)))
	if err != nil {
		t.Fatalf("read failed: %v", err)
	}
	return out
}

// FuzzSpellCorrectorIdempotent checks the word-mapping transform never
// panics and is idempotent on arbitrary byte content.
func FuzzSpellCorrectorIdempotent(f *testing.F) {
	f.Add([]byte("teh quick brown fox"))
	f.Add([]byte(""))
	f.Add([]byte{0xff, 0x00, 0x80})
	f.Add([]byte("Teh TEH teh'teh-teh\nrecieve"))
	f.Fuzz(func(t *testing.T, content []byte) {
		sc := NewSpellCorrector(0)
		once := applyRead(t, sc, content)
		twice := applyRead(t, sc, once)
		if !bytes.Equal(once, twice) {
			t.Fatalf("not idempotent: %q -> %q -> %q", content, once, twice)
		}
	})
}

// FuzzCompressorRoundTrip checks write-then-read through the
// compression property restores arbitrary content exactly.
func FuzzCompressorRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, 4096))
	f.Fuzz(func(t *testing.T, content []byte) {
		c := NewCompressor(6, 0)
		var sink stream.BufferCloser
		w := stream.ChainOutput(&sink, c.WrapOutput(&WriteContext{}))
		w.Write(content)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		back := applyRead(t, c, sink.Bytes())
		if !bytes.Equal(back, content) {
			t.Fatalf("round trip lost data: %d bytes -> %d bytes", len(content), len(back))
		}
	})
}

// FuzzRot13Involution checks rot13∘rot13 = identity for arbitrary
// bytes.
func FuzzRot13Involution(f *testing.F) {
	f.Add([]byte("Mixed CASE and 123!"))
	f.Fuzz(func(t *testing.T, content []byte) {
		r := NewRot13(0)
		twice := applyRead(t, r, applyRead(t, r, content))
		if !bytes.Equal(twice, content) {
			t.Fatal("rot13 not an involution")
		}
	})
}
