package property

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestCompressorRoundTrip(t *testing.T) {
	c := NewCompressor(6, 0)
	plain := []byte(strings.Repeat("the placeless documents system ", 100))
	stored := runWrite(t, c, plain)
	if len(stored) >= len(plain) {
		t.Fatalf("compression did not shrink repetitive content: %d -> %d", len(plain), len(stored))
	}
	back, _ := runRead(t, c, stored)
	if !bytes.Equal(back, plain) {
		t.Fatal("round trip mismatch")
	}
}

func TestCompressorPassesThroughUncompressed(t *testing.T) {
	// Content written before the property was attached is not
	// deflate data; the read path must pass it through unharmed.
	c := NewCompressor(6, 0)
	legacy := []byte("plain legacy content, never compressed")
	got, _ := runRead(t, c, legacy)
	if !bytes.Equal(got, legacy) {
		t.Fatalf("legacy content mangled: %q", got)
	}
}

func TestCompressorBadLevelDefaults(t *testing.T) {
	c := NewCompressor(99, 0)
	plain := []byte(strings.Repeat("x", 500))
	stored := runWrite(t, c, plain)
	back, _ := runRead(t, c, stored)
	if !bytes.Equal(back, plain) {
		t.Fatal("default-level round trip failed")
	}
}

// Property: compress-then-decompress is the identity for arbitrary
// bytes.
func TestCompressorIdentityProperty(t *testing.T) {
	c := NewCompressor(1, 0)
	f := func(data []byte) bool {
		stored := runWrite(t, c, data)
		back, _ := runRead(t, c, stored)
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
