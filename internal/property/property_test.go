package property

import (
	"testing"
	"testing/quick"
	"time"

	"placeless/internal/event"
)

func TestCacheabilityString(t *testing.T) {
	cases := map[Cacheability]string{
		Unrestricted:     "unrestricted",
		CacheWithEvents:  "cacheWithEvents",
		Uncacheable:      "uncacheable",
		Cacheability(42): "invalid",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestRestrictPicksMostRestrictive(t *testing.T) {
	if Restrict(Unrestricted, Uncacheable) != Uncacheable {
		t.Fatal("Uncacheable must dominate")
	}
	if Restrict(CacheWithEvents, Unrestricted) != CacheWithEvents {
		t.Fatal("CacheWithEvents must dominate Unrestricted")
	}
}

// Property: Restrict is commutative, associative, and idempotent, so
// aggregate cacheability does not depend on property execution order —
// the invariant §3 of the paper relies on when it says the choices
// "aggregate to the most restrictive value".
func TestRestrictAlgebraProperty(t *testing.T) {
	vals := []Cacheability{Unrestricted, CacheWithEvents, Uncacheable}
	f := func(ai, bi, ci uint8) bool {
		a, b, c := vals[ai%3], vals[bi%3], vals[ci%3]
		if Restrict(a, b) != Restrict(b, a) {
			return false
		}
		if Restrict(Restrict(a, b), c) != Restrict(a, Restrict(b, c)) {
			return false
		}
		return Restrict(a, a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadContextVoteAggregation(t *testing.T) {
	rc := &ReadContext{}
	rc.Vote(Unrestricted)
	rc.Vote(CacheWithEvents)
	rc.Vote(Unrestricted)
	if got := rc.Result().Cacheability; got != CacheWithEvents {
		t.Fatalf("aggregate = %v, want cacheWithEvents", got)
	}
	rc.Vote(Uncacheable)
	if got := rc.Result().Cacheability; got != Uncacheable {
		t.Fatalf("aggregate = %v, want uncacheable", got)
	}
}

func TestReadContextCostAccumulation(t *testing.T) {
	rc := &ReadContext{}
	rc.AddCost(10 * time.Millisecond)
	rc.AddCost(5 * time.Millisecond)
	rc.AddCost(-time.Hour) // negative ignored
	if got := rc.Result().Cost; got != 15*time.Millisecond {
		t.Fatalf("cost = %v", got)
	}
}

func TestReadContextScaleAndFloor(t *testing.T) {
	rc := &ReadContext{}
	rc.AddCost(10 * time.Millisecond)
	rc.ScaleCost(3)
	if got := rc.Result().Cost; got != 30*time.Millisecond {
		t.Fatalf("scaled cost = %v", got)
	}
	rc.FloorCost(time.Second)
	if got := rc.Result().Cost; got != time.Second {
		t.Fatalf("floored cost = %v", got)
	}
	rc.FloorCost(time.Millisecond) // below current: no-op
	if got := rc.Result().Cost; got != time.Second {
		t.Fatalf("floor lowered cost to %v", got)
	}
}

func TestReadContextVerifierCollection(t *testing.T) {
	rc := &ReadContext{}
	rc.AddVerifier(TTLVerifier{})
	rc.AddVerifier(nil) // ignored
	rc.AddVerifier(FuncVerifier{VerifierName: "x", Fn: func(time.Time) (bool, error) { return true, nil }})
	res := rc.Result()
	if len(res.Verifiers) != 2 {
		t.Fatalf("verifiers = %d, want 2", len(res.Verifiers))
	}
	// Result returns a copy: mutating it must not affect the context.
	res.Verifiers[0] = nil
	if rc.Result().Verifiers[0] == nil {
		t.Fatal("Result aliases internal verifier slice")
	}
}

func TestWriteContextVote(t *testing.T) {
	wc := &WriteContext{}
	if wc.Cacheability() != Unrestricted {
		t.Fatal("zero write context should be unrestricted")
	}
	wc.Vote(CacheWithEvents)
	if wc.Cacheability() != CacheWithEvents {
		t.Fatalf("vote = %v", wc.Cacheability())
	}
}

func TestStaticName(t *testing.T) {
	s := Static{Key: "workshop", Value: "1999"}
	if s.Name() != "workshop" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestBaseDefaults(t *testing.T) {
	b := Base{PropName: "noop"}
	if b.Name() != "noop" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.Events() != nil {
		t.Fatal("Base.Events should be empty")
	}
	if b.WrapInput(&ReadContext{}) != nil || b.WrapOutput(&WriteContext{}) != nil {
		t.Fatal("Base wrappers should be nil")
	}
	b.OnEvent(nil, event.Event{}) // no-op, must not panic
}
