package property

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"placeless/internal/event"
	"placeless/internal/stream"
)

// ExternalVar models information completely external to the Placeless
// system that active properties depend on — "current time, data stored
// in databases and other on-line sources" or the stock quotes behind a
// financial portfolio page (paper §3, invalidation cause 4). It is a
// versioned float with change subscriptions, so the same source can be
// tracked either by a verifier (poll on hit) or by a notifier (push on
// change), which is exactly the tradeoff experiment E1 measures.
type ExternalVar struct {
	mu      sync.Mutex
	name    string
	value   float64
	version int64
	subs    []func(value float64, version int64)
}

// NewExternalVar returns a source with an initial value.
func NewExternalVar(name string, value float64) *ExternalVar {
	return &ExternalVar{name: name, value: value, version: 1}
}

// Name identifies the source.
func (v *ExternalVar) Name() string { return v.name }

// Get returns the current value and version.
func (v *ExternalVar) Get() (float64, int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.value, v.version
}

// Value returns just the current value.
func (v *ExternalVar) Value() float64 {
	val, _ := v.Get()
	return val
}

// Set updates the value, bumps the version, and fires change
// subscriptions synchronously.
func (v *ExternalVar) Set(value float64) {
	v.mu.Lock()
	v.value = value
	v.version++
	version := v.version
	subs := make([]func(float64, int64), len(v.subs))
	copy(subs, v.subs)
	v.mu.Unlock()
	for _, fn := range subs {
		fn(value, version)
	}
}

// OnChange subscribes fn to future Set calls.
func (v *ExternalVar) OnChange(fn func(value float64, version int64)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.subs = append(v.subs, fn)
}

// ConsistencyMode selects how a property that depends on external
// information keeps caches consistent with it.
type ConsistencyMode int

const (
	// ByVerifier returns a verifier that polls the source version on
	// every cache hit.
	ByVerifier ConsistencyMode = iota
	// ByNotifier pushes an invalidation when the source changes; the
	// cached entry is served without per-hit checks.
	ByNotifier
	// ByThreshold returns a Threshold verifier that tolerates small
	// value changes (the portfolio-page policy).
	ByThreshold
)

// ExternalInfo is a read-path property whose output embeds the value
// of an ExternalVar, making cached content stale whenever the source
// moves. Its Mode decides whether staleness is caught by a verifier, a
// notifier, or a significance threshold — the paper notes "invalidation
// policies could either be placed in a notifier or a verifier".
type ExternalInfo struct {
	Base
	// Source is the external dependency.
	Source *ExternalVar
	// Mode selects the consistency mechanism.
	Mode ConsistencyMode
	// Tolerance applies in ByThreshold mode.
	Tolerance float64
	// ExecCost is the simulated cost of rendering the value into the
	// document.
	ExecCost time.Duration
	// NotifyChange, used in ByNotifier mode, is wired by the
	// document space when the property is attached; it dispatches an
	// externalChange event for the owning document.
	NotifyChange func()

	hooked bool
	mu     sync.Mutex
}

// NewExternalInfo returns a property embedding source's value under
// the given consistency mode.
func NewExternalInfo(source *ExternalVar, mode ConsistencyMode, cost time.Duration) *ExternalInfo {
	return &ExternalInfo{
		Base:     Base{PropName: "external:" + source.Name()},
		Source:   source,
		Mode:     mode,
		ExecCost: cost,
	}
}

// Events implements Active.
func (*ExternalInfo) Events() []event.Kind {
	return []event.Kind{event.GetInputStream, event.SetProperty}
}

// OnEvent implements Active: on its own attachment in ByNotifier mode,
// it hooks the source so future changes raise externalChange events
// (which cache notifiers can subscribe to).
func (x *ExternalInfo) OnEvent(ctx *EventContext, e event.Event) {
	if e.Kind != event.SetProperty || e.Property != x.Name() || x.Mode != ByNotifier {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.hooked || x.NotifyChange == nil {
		return
	}
	x.hooked = true
	notify := x.NotifyChange
	x.Source.OnChange(func(float64, int64) { notify() })
}

// WrapInput implements Active: appends the rendered value to the
// content and registers the mode-appropriate verifier.
func (x *ExternalInfo) WrapInput(ctx *ReadContext) stream.InputWrapper {
	value, version := x.Source.Get()
	ctx.AddCost(x.ExecCost)
	switch x.Mode {
	case ByVerifier:
		src := x.Source
		ctx.AddVerifier(FuncVerifier{
			VerifierName: "external:" + src.Name(),
			Fn: func(time.Time) (bool, error) {
				_, now := src.Get()
				return now == version, nil
			},
		})
	case ByThreshold:
		src := x.Source
		ctx.AddVerifier(Threshold{
			VerifierName: src.Name(),
			Source:       src.Value,
			Reference:    value,
			Tolerance:    x.Tolerance,
		})
	case ByNotifier:
		// Consistency is push-based; nothing to check per hit.
	}
	line := []byte(fmt.Sprintf("\n%s = %s (v%d)\n", x.Source.Name(), strconv.FormatFloat(value, 'f', 2, 64), version))
	cost, sleep := x.ExecCost, ctx.Sleep
	return stream.WholeInput(func(b []byte) []byte {
		if sleep != nil && cost > 0 {
			sleep(cost)
		}
		return append(append([]byte{}, b...), line...)
	})
}
