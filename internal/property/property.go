// Package property implements Placeless document properties: static
// labels and active, event-driven behaviours.
//
// Properties are "statements about the context of a document or the
// intended behavior for the document" (paper §1). Static properties
// are labels; active properties register for document events and run
// when they fire, optionally interposing custom streams on the read
// and write paths (see package stream). Active properties also drive
// the caching architecture: they vote cacheability, accumulate
// replacement cost, return verifiers with content, and — as notifiers
// — push invalidations to caches.
package property

import (
	"io"
	"time"

	"placeless/internal/event"
	"placeless/internal/stream"
)

// Cacheability is a property's vote on whether and how the content it
// produced may be cached (paper §3, Cache Management). Votes aggregate
// to the most restrictive value across the read path.
type Cacheability int

const (
	// Unrestricted allows the cache to serve hits without consulting
	// the Placeless system.
	Unrestricted Cacheability = iota
	// CacheWithEvents allows caching, but the cache must still
	// forward operation events so event-only properties (e.g. read
	// audit trails) are triggered; the forwarded operations are not
	// executed fully.
	CacheWithEvents
	// Uncacheable forbids caching the content at all.
	Uncacheable
)

// String names the vote.
func (c Cacheability) String() string {
	switch c {
	case Unrestricted:
		return "unrestricted"
	case CacheWithEvents:
		return "cacheWithEvents"
	case Uncacheable:
		return "uncacheable"
	default:
		return "invalid"
	}
}

// Restrict returns the more restrictive of two votes; the aggregation
// operator for the read path. It is commutative, associative, and
// idempotent, so aggregate cacheability is independent of property
// order.
func Restrict(a, b Cacheability) Cacheability {
	if b > a {
		return b
	}
	return a
}

// Memoizable is the opt-in contract for intermediate memoization of
// the read path's universal stage. An active property that implements
// it — and reports ok — declares that its read-path stream wrapper is a
// pure function of the input bytes: same input, same output, no
// mutation or retention of the input slice, and no dependence on
// information outside the property's own configuration. Caches may
// then reuse the stage's output across users instead of re-executing
// the transform chain, keyed by (source signature, chain fingerprint).
//
// The default is NOT memoizable: a property that does not implement
// this interface (or reports ok=false) forces the cache to re-run the
// stage on every read. Properties whose output depends on external
// information — the paper's invalidation cause 4 (current time,
// databases, stock quotes) — must stay non-memoizable, because no
// property-mutation event fires when that information moves.
//
// The key must change whenever the property's behaviour changes: it
// should digest the name, release version, and every configuration
// input that affects output bytes (dictionaries, line counts,
// banners). Two properties with equal keys are assumed to produce
// byte-identical output for equal input.
type Memoizable interface {
	Active
	// MemoKey returns the behaviour digest and whether the read
	// transform is memoizable at all.
	MemoKey() (key string, ok bool)
}

// Verifier is consistency-checking code returned to a cache along with
// document content (paper §3, Notifiers and Verifiers). The cache runs
// every verifier on each hit; if any reports invalid, the entry is
// discarded and the access treated as a miss. Verifiers exist to catch
// changes outside Placeless control, so a Check typically polls the
// original source and charges simulated time for doing so.
type Verifier interface {
	// Name identifies the verifier in traces.
	Name() string
	// Check reports whether the cached entry is still valid at the
	// given time. An error counts as invalid (fail-safe).
	Check(now time.Time) (bool, error)
}

// Static is a passive label attached to a document, such as
// "1999 workshop submission" or a saved-version link.
type Static struct {
	// Key is the label name.
	Key string
	// Value is the label content; may be empty for pure tags.
	Value string
}

// Name returns the label key.
func (s Static) Name() string { return s.Key }

// ReadContext is handed to each active property during getInputStream
// dispatch. The property uses it to vote cacheability, contribute
// replacement cost, and return verifiers — the three channels through
// which properties inform the cache (paper §3).
type ReadContext struct {
	// Doc is the base document id; User the reference owner (empty
	// when the read path is executing base-document properties for
	// an owner-less access).
	Doc, User string
	// Now is the simulated time at which the read began.
	Now time.Time
	// Sleep charges simulated execution time (a property's transform
	// cost) to the access.
	Sleep func(d time.Duration)

	cacheability Cacheability
	verifiers    []Verifier
	cost         time.Duration
	related      []string
}

// Vote merges a cacheability vote; aggregation keeps the most
// restrictive value seen.
func (rc *ReadContext) Vote(c Cacheability) { rc.cacheability = Restrict(rc.cacheability, c) }

// AddVerifier returns v to the cache along with the content.
func (rc *ReadContext) AddVerifier(v Verifier) {
	if v != nil {
		rc.verifiers = append(rc.verifiers, v)
	}
}

// AddCost adds d to the entry's replacement cost. The bit-provider
// initializes the value with the retrieval cost; each property on the
// read path then adds its execution time (paper §3, Cache Management).
func (rc *ReadContext) AddCost(d time.Duration) {
	if d > 0 {
		rc.cost += d
	}
}

// CostSoFar returns the replacement cost accumulated so far; staged
// read paths use it to attribute cost deltas to individual stages.
func (rc *ReadContext) CostSoFar() time.Duration { return rc.cost }

// ScaleCost multiplies the replacement cost accumulated so far by
// factor; QoS properties use it to inflate cost (paper §5).
func (rc *ReadContext) ScaleCost(factor float64) {
	if factor > 0 {
		rc.cost = time.Duration(float64(rc.cost) * factor)
	}
}

// FloorCost raises the replacement cost to at least min.
func (rc *ReadContext) FloorCost(min time.Duration) {
	if rc.cost < min {
		rc.cost = min
	}
}

// AddRelated tells the cache that doc is related to the one being read
// (e.g. a member of the same collection), a hint prefetching policies
// can act on (paper §5 names caching for related documents as open
// work). Duplicates and the document being read itself are filtered by
// the consumer.
func (rc *ReadContext) AddRelated(doc string) {
	if doc != "" && doc != rc.Doc {
		rc.related = append(rc.related, doc)
	}
}

// Result snapshots what the read path accumulated for the cache.
func (rc *ReadContext) Result() ReadResult {
	vs := make([]Verifier, len(rc.verifiers))
	copy(vs, rc.verifiers)
	rel := make([]string, len(rc.related))
	copy(rel, rc.related)
	return ReadResult{Cacheability: rc.cacheability, Verifiers: vs, Cost: rc.cost, Related: rel}
}

// ReadResult is the cache-facing outcome of executing a read path:
// everything the cache receives besides the bytes themselves.
type ReadResult struct {
	// Cacheability is the most restrictive vote across the path.
	Cacheability Cacheability
	// Verifiers must all pass on every future cache hit.
	Verifiers []Verifier
	// Cost is the accumulated replacement cost (retrieval plus
	// property execution times), the input to Greedy-Dual-Size.
	Cost time.Duration
	// Related lists documents a property declared related to this
	// one; caches may prefetch them.
	Related []string
}

// WriteContext is handed to each active property during
// getOutputStream dispatch.
type WriteContext struct {
	// Doc and User identify the document and writing reference.
	Doc, User string
	// Now is the simulated time at which the write began.
	Now time.Time
	// Sleep charges simulated execution time.
	Sleep func(d time.Duration)
	// Snapshot reads the document's current content (before this
	// write) through the bit-provider; versioning properties use it
	// to park the superseded copy.
	Snapshot func() ([]byte, error)
	// StoreAside archives data under a label in an auxiliary
	// repository (e.g. the DMS), returning the archive path.
	StoreAside func(label string, data []byte) (string, error)
	// AttachStatic attaches a static property to the base document,
	// e.g. a link to a saved version.
	AttachStatic func(key, value string)

	cacheability Cacheability
}

// Vote merges a write-path cacheability vote, used by write-back
// caches to decide whether getOutputStream operations must be
// forwarded (paper §3).
func (wc *WriteContext) Vote(c Cacheability) { wc.cacheability = Restrict(wc.cacheability, c) }

// Cacheability returns the aggregated write-path vote.
func (wc *WriteContext) Cacheability() Cacheability { return wc.cacheability }

// EventContext is handed to active properties for non-stream events
// (property mutations, timers, content-written).
type EventContext struct {
	// Doc and User identify the document and, when applicable, the
	// reference owner.
	Doc, User string
	// Now is the simulated time of the event.
	Now time.Time
	// ReadCurrent reads the document's current content through the
	// bit-provider.
	ReadCurrent func() ([]byte, error)
	// StoreAside archives data under a label, as in WriteContext.
	StoreAside func(label string, data []byte) (string, error)
	// AttachStatic attaches a static property to the base document.
	AttachStatic func(key, value string)
	// ScheduleTimer requests a Timer event for this property after d.
	ScheduleTimer func(d time.Duration)
}

// Active is an event-driven property. Implementations embed Base and
// override what they need.
type Active interface {
	// Name identifies the property; names are unique per attachment
	// point.
	Name() string
	// Events lists the kinds the property registers for.
	Events() []event.Kind
	// OnEvent handles a non-stream event the property registered for.
	OnEvent(ctx *EventContext, e event.Event)
	// WrapInput returns this property's read-path stream wrapper, or
	// nil if it does not intercept reads. Called during
	// getInputStream dispatch.
	WrapInput(ctx *ReadContext) stream.InputWrapper
	// WrapOutput returns this property's write-path stream wrapper,
	// or nil. Called during getOutputStream dispatch.
	WrapOutput(ctx *WriteContext) stream.OutputWrapper
}

// Base provides no-op defaults for Active; concrete properties embed
// it and override selectively.
type Base struct {
	// PropName is returned by Name.
	PropName string
}

// Name implements Active.
func (b Base) Name() string { return b.PropName }

// Events implements Active with an empty registration set.
func (Base) Events() []event.Kind { return nil }

// OnEvent implements Active as a no-op.
func (Base) OnEvent(*EventContext, event.Event) {}

// WrapInput implements Active with no read-path interception.
func (Base) WrapInput(*ReadContext) stream.InputWrapper { return nil }

// WrapOutput implements Active with no write-path interception.
func (Base) WrapOutput(*WriteContext) stream.OutputWrapper { return nil }

// BitProvider is the special active property on a base document that
// links it to actual content (paper §2). It terminates both stream
// paths and, on reads, seeds the ReadContext with retrieval cost, a
// source-appropriate verifier, and a cacheability vote.
type BitProvider interface {
	// Name identifies the provider.
	Name() string
	// Open returns the raw content stream for the read path.
	Open(ctx *ReadContext) (io.ReadCloser, error)
	// Create returns the raw sink for the write path; content
	// written and closed replaces the document content.
	Create(ctx *WriteContext) (io.WriteCloser, error)
	// ReadCurrent fetches the current content without stream
	// plumbing; used by Snapshot/ReadCurrent context hooks.
	ReadCurrent() ([]byte, error)
}
