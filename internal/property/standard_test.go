package property

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"placeless/internal/event"
	"placeless/internal/stream"
)

// runRead executes a transformer's read wrapper over content and
// returns the output plus the context state.
func runRead(t *testing.T, p Active, content []byte) ([]byte, *ReadContext) {
	t.Helper()
	rc := &ReadContext{Doc: "d", User: "u", Now: epoch, Sleep: func(time.Duration) {}}
	w := p.WrapInput(rc)
	r := stream.ChainInput(stream.BytesReader(content), w)
	out, err := stream.ReadAllAndClose(r)
	if err != nil {
		t.Fatal(err)
	}
	return out, rc
}

// runWrite executes a transformer's write wrapper over content.
func runWrite(t *testing.T, p Active, content []byte) []byte {
	t.Helper()
	wc := &WriteContext{Doc: "d", User: "u", Now: epoch, Sleep: func(time.Duration) {}}
	var sink stream.BufferCloser
	w := stream.ChainOutput(&sink, p.WrapOutput(wc))
	if _, err := w.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes()
}

func TestSpellCorrectorFixesKnownTypos(t *testing.T) {
	sc := NewSpellCorrector(0)
	out, _ := runRead(t, sc, []byte("teh paper was recieve'd; Teh adress occured"))
	got := string(out)
	for _, bad := range []string{"teh", "Teh", "recieve", "adress", "occured"} {
		if strings.Contains(got, bad) {
			t.Errorf("output still contains %q: %s", bad, got)
		}
	}
	if !strings.Contains(got, "the paper") || !strings.Contains(got, "The address") {
		t.Errorf("corrections missing or capitalization lost: %s", got)
	}
}

func TestSpellCorrectorOnWritePath(t *testing.T) {
	sc := NewSpellCorrector(0)
	got := runWrite(t, sc, []byte("teh draft"))
	if string(got) != "the draft" {
		t.Fatalf("write path output %q", got)
	}
}

func TestSpellCorrectorRegistersBothStreams(t *testing.T) {
	ks := NewSpellCorrector(0).Events()
	want := map[event.Kind]bool{event.GetInputStream: true, event.GetOutputStream: true}
	if len(ks) != 2 || !want[ks[0]] || !want[ks[1]] {
		t.Fatalf("Events = %v", ks)
	}
}

func TestTranslatorToFrench(t *testing.T) {
	tr := NewTranslator(0)
	out, _ := runRead(t, tr, []byte("the document is a paper"))
	if got := string(out); got != "le document est un papier" {
		t.Fatalf("translation = %q", got)
	}
	if ks := tr.Events(); len(ks) != 1 || ks[0] != event.GetInputStream {
		t.Fatalf("translator should be read-only: %v", ks)
	}
}

func TestTranslatorPreservesUnknownWords(t *testing.T) {
	out, _ := runRead(t, NewTranslator(0), []byte("xerox parc"))
	if string(out) != "xerox parc" {
		t.Fatalf("unknown words changed: %q", out)
	}
}

func TestSummarizerTruncates(t *testing.T) {
	s := NewSummarizer(2, 0)
	out, _ := runRead(t, s, []byte("one\ntwo\nthree\nfour\n"))
	got := string(out)
	if !strings.HasPrefix(got, "one\ntwo\n") || !strings.Contains(got, "[...]") {
		t.Fatalf("summary = %q", got)
	}
	if strings.Contains(got, "three") {
		t.Fatalf("summary leaked truncated content: %q", got)
	}
}

func TestSummarizerShortDocUnchanged(t *testing.T) {
	out, _ := runRead(t, NewSummarizer(10, 0), []byte("only\nlines\n"))
	if string(out) != "only\nlines\n" {
		t.Fatalf("short doc modified: %q", out)
	}
}

func TestSummarizerMinimumOneLine(t *testing.T) {
	s := NewSummarizer(0, 0)
	out, _ := runRead(t, s, []byte("a\nb\n"))
	if !strings.HasPrefix(string(out), "a\n") {
		t.Fatalf("out = %q", out)
	}
}

func TestUppercaser(t *testing.T) {
	out, _ := runRead(t, NewUppercaser(0), []byte("shout"))
	if string(out) != "SHOUT" {
		t.Fatalf("out = %q", out)
	}
}

func TestWatermarkerDistinctPerUser(t *testing.T) {
	a, _ := runRead(t, NewWatermarker("eyal", 0), []byte("doc"))
	b, _ := runRead(t, NewWatermarker("doug", 0), []byte("doc"))
	if bytes.Equal(a, b) {
		t.Fatal("watermarks for different users identical")
	}
	if !strings.Contains(string(a), "eyal") {
		t.Fatalf("watermark missing user: %q", a)
	}
}

func TestRot13SelfInverse(t *testing.T) {
	r := NewRot13(0)
	once, _ := runRead(t, r, []byte("Secret Draft 99!"))
	twice, _ := runRead(t, r, once)
	if string(twice) != "Secret Draft 99!" {
		t.Fatalf("rot13 not self-inverse: %q", twice)
	}
	stored := runWrite(t, r, []byte("Hello"))
	back, _ := runRead(t, r, stored)
	if string(back) != "Hello" {
		t.Fatalf("write-then-read = %q", back)
	}
}

func TestLineNumberer(t *testing.T) {
	out, _ := runRead(t, NewLineNumberer(0), []byte("alpha\nbeta\n"))
	got := string(out)
	if !strings.Contains(got, "1  alpha") || !strings.Contains(got, "2  beta") {
		t.Fatalf("out = %q", got)
	}
	empty, _ := runRead(t, NewLineNumberer(0), nil)
	if len(empty) != 0 {
		t.Fatalf("empty doc produced %q", empty)
	}
}

func TestOrderSensitivity(t *testing.T) {
	// The paper's invalidation cause 3: "the result of applying a
	// spell checking property to a document varies whether it is
	// applied before or after a language translation property".
	// Demonstrate with summarize vs line-number.
	content := []byte("one\ntwo\nthree\n")
	sum, num := NewSummarizer(1, 0), NewLineNumberer(0)

	rc1 := &ReadContext{Now: epoch}
	r1 := stream.ChainInput(stream.BytesReader(content), sum.WrapInput(rc1), num.WrapInput(rc1))
	a, _ := stream.ReadAllAndClose(r1)

	rc2 := &ReadContext{Now: epoch}
	r2 := stream.ChainInput(stream.BytesReader(content), num.WrapInput(rc2), sum.WrapInput(rc2))
	b, _ := stream.ReadAllAndClose(r2)

	if bytes.Equal(a, b) {
		t.Fatalf("property order had no effect: %q", a)
	}
}

func TestTransformerCostAccounting(t *testing.T) {
	tr := NewTranslator(7 * time.Millisecond)
	var slept time.Duration
	rc := &ReadContext{Now: epoch, Sleep: func(d time.Duration) { slept += d }}
	w := tr.WrapInput(rc)
	out, err := stream.ReadAllAndClose(stream.ChainInput(stream.BytesReader([]byte("hello world")), w))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "bonjour monde" {
		t.Fatalf("out = %q", out)
	}
	if slept != 7*time.Millisecond {
		t.Fatalf("execution charged %v, want 7ms", slept)
	}
	if rc.Result().Cost != 7*time.Millisecond {
		t.Fatalf("replacement cost = %v, want 7ms", rc.Result().Cost)
	}
}

func TestTransformerNilTransformsNoWrappers(t *testing.T) {
	tr := &Transformer{Base: Base{PropName: "noop"}}
	if tr.WrapInput(&ReadContext{}) != nil || tr.WrapOutput(&WriteContext{}) != nil || tr.Events() != nil {
		t.Fatal("transformer with no transforms should register nothing")
	}
}

func TestTransformerVotePropagates(t *testing.T) {
	tr := &Transformer{Base: Base{PropName: "v"}, ReadTransform: bytes.ToUpper, CacheVote: Uncacheable}
	rc := &ReadContext{}
	tr.WrapInput(rc)
	if rc.Result().Cacheability != Uncacheable {
		t.Fatal("read vote not propagated")
	}
	tr2 := &Transformer{Base: Base{PropName: "v2"}, WriteTransform: bytes.ToUpper, CacheVote: CacheWithEvents}
	wc := &WriteContext{}
	tr2.WrapOutput(wc)
	if wc.Cacheability() != CacheWithEvents {
		t.Fatal("write vote not propagated")
	}
}

func TestSortedWords(t *testing.T) {
	words := SortedWords(map[string]string{"b": "1", "a": "2", "c": "3"})
	if len(words) != 3 || words[0] != "a" || words[2] != "c" {
		t.Fatalf("SortedWords = %v", words)
	}
}

// Property: spell correction is idempotent — correcting corrected text
// changes nothing.
func TestSpellCorrectorIdempotentProperty(t *testing.T) {
	sc := NewSpellCorrector(0)
	f := func(s string) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		once, _ := runRead(t, sc, []byte(s))
		twice, _ := runRead(t, sc, once)
		return bytes.Equal(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: rot13(rot13(x)) == x for arbitrary bytes.
func TestRot13InvolutionProperty(t *testing.T) {
	r := NewRot13(0)
	f := func(b []byte) bool {
		once, _ := runRead(t, r, b)
		twice, _ := runRead(t, r, once)
		return bytes.Equal(twice, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
