package property

import (
	"bytes"
	"compress/flate"
	"io"
	"time"
)

// NewCompressor returns a storage-compression property: content is
// deflate-compressed on the write path and decompressed on the read
// path, so the repository holds compressed bytes while every user sees
// plain content. It belongs on the base document (universal) — a
// per-reference compressor would corrupt other users' views.
//
// Read-path decompression of content that is not valid deflate (e.g.
// pre-existing content from before the property was attached) is
// passed through unchanged, so attaching the property to a live
// document is safe: the first write-through converts it.
func NewCompressor(level int, cost time.Duration) *Transformer {
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		level = flate.DefaultCompression
	}
	compress := func(b []byte) []byte {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, level)
		if err != nil {
			return append([]byte{}, b...)
		}
		if _, err := w.Write(b); err != nil {
			return append([]byte{}, b...)
		}
		if err := w.Close(); err != nil {
			return append([]byte{}, b...)
		}
		return buf.Bytes()
	}
	decompress := func(b []byte) []byte {
		r := flate.NewReader(bytes.NewReader(b))
		out, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			// Not deflate data: pass through (pre-attachment content).
			return append([]byte{}, b...)
		}
		return out
	}
	return &Transformer{
		Base:           Base{PropName: "compress"},
		ReadTransform:  decompress,
		WriteTransform: compress,
		ExecCost:       cost,
		Version:        1,
	}
}
