package property

import (
	"errors"
	"strings"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/event"
	"placeless/internal/repo"
	"placeless/internal/simnet"
	"placeless/internal/stream"
)

func memRepo(clk clock.Clock) *repo.Mem {
	return repo.NewMem("mem", clk, simnet.NewPath("p", 1))
}

func TestVersioningArchivesOnWrite(t *testing.T) {
	v := NewVersioning()
	var archived [][]byte
	var attached []Static
	ctx := &EventContext{
		Doc:         "d",
		ReadCurrent: func() ([]byte, error) { return []byte("current content"), nil },
		StoreAside: func(label string, data []byte) (string, error) {
			archived = append(archived, append([]byte{}, data...))
			return "/archive/" + label, nil
		},
		AttachStatic: func(key, value string) { attached = append(attached, Static{key, value}) },
	}
	v.OnEvent(ctx, event.Event{Kind: event.GetOutputStream, Doc: "d"})
	if len(archived) != 1 || string(archived[0]) != "current content" {
		t.Fatalf("archived = %v", archived)
	}
	if len(attached) != 1 || attached[0].Key != "version-1" || !strings.Contains(attached[0].Value, "version-1") {
		t.Fatalf("attached = %v", attached)
	}
	if v.SavedVersions() != 1 {
		t.Fatalf("SavedVersions = %d", v.SavedVersions())
	}
}

func TestVersioningIgnoresOtherEvents(t *testing.T) {
	v := NewVersioning()
	ctx := &EventContext{
		ReadCurrent: func() ([]byte, error) { return []byte("x"), nil },
		StoreAside:  func(string, []byte) (string, error) { t.Fatal("archived on read"); return "", nil },
	}
	v.OnEvent(ctx, event.Event{Kind: event.GetInputStream})
	if v.SavedVersions() != 0 {
		t.Fatal("versioned on a read event")
	}
}

func TestVersioningSkipsWhenNoContentYet(t *testing.T) {
	v := NewVersioning()
	ctx := &EventContext{
		ReadCurrent: func() ([]byte, error) { return nil, errors.New("not found") },
		StoreAside:  func(string, []byte) (string, error) { t.Fatal("archived missing doc"); return "", nil },
	}
	v.OnEvent(ctx, event.Event{Kind: event.GetOutputStream})
	if v.SavedVersions() != 0 {
		t.Fatal("counted a failed snapshot")
	}
}

func TestReplicatorTimerCycle(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	target := memRepo(clk)
	r := NewReplicator(target, "/rice/hotos.doc", 24*time.Hour)

	if ks := r.Events(); len(ks) != 2 {
		t.Fatalf("Events = %v", ks)
	}

	var scheduled []time.Duration
	content := []byte("draft v1")
	ctx := &EventContext{
		Doc:           "d",
		ReadCurrent:   func() ([]byte, error) { return content, nil },
		ScheduleTimer: func(d time.Duration) { scheduled = append(scheduled, d) },
	}

	// Attachment arms the first timer.
	r.OnEvent(ctx, event.Event{Kind: event.SetProperty, Property: r.Name()})
	if len(scheduled) != 1 || scheduled[0] != 24*time.Hour {
		t.Fatalf("scheduled = %v", scheduled)
	}

	// Timer fires: replicate and re-arm.
	r.OnEvent(ctx, event.Event{Kind: event.Timer, Property: r.Name()})
	if len(scheduled) != 2 {
		t.Fatalf("timer did not re-arm: %v", scheduled)
	}
	fr, err := target.Fetch("/rice/hotos.doc")
	if err != nil || string(fr.Data) != "draft v1" {
		t.Fatalf("replica = %q, %v", fr.Data, err)
	}
	if runs, errs := r.Runs(); runs != 1 || errs != 0 {
		t.Fatalf("Runs = %d,%d", runs, errs)
	}
}

func TestReplicatorIgnoresForeignEvents(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	r := NewReplicator(memRepo(clk), "/x", time.Hour)
	armed := false
	ctx := &EventContext{ScheduleTimer: func(time.Duration) { armed = true }}
	r.OnEvent(ctx, event.Event{Kind: event.SetProperty, Property: "someone-else"})
	r.OnEvent(ctx, event.Event{Kind: event.Timer, Property: "someone-else"})
	if armed {
		t.Fatal("replicator reacted to another property's events")
	}
}

func TestReplicatorCountsErrors(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	feed := repo.NewLiveFeed("cam", clk, simnet.NewPath("p", 1), 8) // read-only target
	r := NewReplicator(feed, "/x", time.Hour)
	ctx := &EventContext{ReadCurrent: func() ([]byte, error) { return []byte("d"), nil }}
	r.OnEvent(ctx, event.Event{Kind: event.Timer, Property: r.Name()})
	if runs, errs := r.Runs(); runs != 1 || errs != 1 {
		t.Fatalf("Runs = %d,%d, want 1,1", runs, errs)
	}
}

func TestAuditTrailRecordsReadsAndWrites(t *testing.T) {
	a := NewAuditTrail()
	ctx := &EventContext{}
	a.OnEvent(ctx, event.Event{Kind: event.GetInputStream, User: "eyal", Time: epoch})
	a.OnEvent(ctx, event.Event{Kind: event.GetOutputStream, User: "doug", Time: epoch.Add(time.Second)})
	a.OnEvent(ctx, event.Event{Kind: event.SetProperty, User: "paul"}) // not audited
	recs := a.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].User != "eyal" || recs[0].Kind != event.GetInputStream {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].User != "doug" || recs[1].Kind != event.GetOutputStream {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestAuditTrailMarksForwardedEvents(t *testing.T) {
	a := NewAuditTrail()
	a.OnEvent(&EventContext{}, event.Event{Kind: event.GetInputStream, Detail: "forwarded"})
	if recs := a.Records(); !recs[0].Forwarded {
		t.Fatal("forwarded event not marked")
	}
}

func TestAuditTrailVotesCacheWithEvents(t *testing.T) {
	a := NewAuditTrail()
	rc := &ReadContext{}
	if w := a.WrapInput(rc); w != nil {
		t.Fatal("audit trail must not intercept content")
	}
	if rc.Result().Cacheability != CacheWithEvents {
		t.Fatalf("vote = %v, want cacheWithEvents", rc.Result().Cacheability)
	}
}

func TestQoSInflatesCost(t *testing.T) {
	q := NewQoS(250*time.Millisecond, 4)
	rc := &ReadContext{}
	rc.AddCost(10 * time.Millisecond)
	if w := q.WrapInput(rc); w != nil {
		t.Fatal("QoS must not intercept content")
	}
	if got := rc.Result().Cost; got != 40*time.Millisecond {
		t.Fatalf("cost = %v, want 40ms", got)
	}
	if !strings.Contains(q.Name(), "250ms") {
		t.Fatalf("Name = %q", q.Name())
	}
}

func TestQoSCostFloor(t *testing.T) {
	q := &QoS{Base: Base{PropName: "qos"}, CostFloor: time.Second}
	rc := &ReadContext{}
	rc.AddCost(time.Millisecond)
	q.WrapInput(rc)
	if got := rc.Result().Cost; got != time.Second {
		t.Fatalf("cost = %v, want floor 1s", got)
	}
}

func TestNotifierDeliversMatchingEvents(t *testing.T) {
	var got []event.Event
	n := NewNotifier("cache-notifier", func(e event.Event) { got = append(got, e) },
		event.ContentWritten, event.SetProperty)
	if len(n.Events()) != 2 {
		t.Fatalf("Events = %v", n.Events())
	}
	n.OnEvent(&EventContext{}, event.Event{Kind: event.ContentWritten, Doc: "d"})
	if len(got) != 1 || got[0].Doc != "d" {
		t.Fatalf("got = %v", got)
	}
}

func TestNotifierIgnoresItself(t *testing.T) {
	fired := 0
	n := NewNotifier("self", func(event.Event) { fired++ }, event.SetProperty)
	n.OnEvent(&EventContext{}, event.Event{Kind: event.SetProperty, Property: "self"})
	if fired != 0 {
		t.Fatal("notifier invalidated on its own attachment")
	}
	n.OnEvent(&EventContext{}, event.Event{Kind: event.SetProperty, Property: "other"})
	if fired != 1 {
		t.Fatal("notifier missed a foreign property event")
	}
}

func TestNotifierSemanticPredicate(t *testing.T) {
	fired := 0
	n := NewNotifier("sem", func(event.Event) { fired++ }, event.SetProperty)
	n.Predicate = func(e event.Event) bool { return strings.HasPrefix(e.Property, "translate") }
	n.OnEvent(&EventContext{}, event.Event{Kind: event.SetProperty, Property: "audit-trail"})
	n.OnEvent(&EventContext{}, event.Event{Kind: event.SetProperty, Property: "translate-fr"})
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (predicate filters)", fired)
	}
	seen, sent := n.Counts()
	if seen != 2 || sent != 1 {
		t.Fatalf("Counts = %d,%d", seen, sent)
	}
}

func TestExternalVarVersioningAndSubs(t *testing.T) {
	v := NewExternalVar("XRX", 55)
	if val, ver := v.Get(); val != 55 || ver != 1 {
		t.Fatalf("Get = %v,%v", val, ver)
	}
	var notified []float64
	v.OnChange(func(val float64, _ int64) { notified = append(notified, val) })
	v.Set(60)
	v.Set(61)
	if _, ver := v.Get(); ver != 3 {
		t.Fatalf("version = %d", ver)
	}
	if len(notified) != 2 || notified[1] != 61 {
		t.Fatalf("notified = %v", notified)
	}
}

func TestExternalInfoVerifierMode(t *testing.T) {
	src := NewExternalVar("quote", 100)
	x := NewExternalInfo(src, ByVerifier, 0)
	rc := &ReadContext{Now: epoch}
	w := x.WrapInput(rc)
	out, _ := stream.ReadAllAndClose(stream.ChainInput(stream.BytesReader([]byte("portfolio")), w))
	if !strings.Contains(string(out), "quote = 100.00") {
		t.Fatalf("out = %q", out)
	}
	res := rc.Result()
	if len(res.Verifiers) != 1 {
		t.Fatalf("verifiers = %d", len(res.Verifiers))
	}
	if ok, _ := res.Verifiers[0].Check(epoch); !ok {
		t.Fatal("fresh external value reported stale")
	}
	src.Set(101)
	if ok, _ := res.Verifiers[0].Check(epoch); ok {
		t.Fatal("changed external value reported fresh")
	}
}

func TestExternalInfoThresholdMode(t *testing.T) {
	src := NewExternalVar("quote", 100)
	x := NewExternalInfo(src, ByThreshold, 0)
	x.Tolerance = 5
	rc := &ReadContext{Now: epoch}
	x.WrapInput(rc)
	ver := rc.Result().Verifiers[0]
	src.Set(103)
	if ok, _ := ver.Check(epoch); !ok {
		t.Fatal("in-tolerance change invalidated")
	}
	src.Set(110)
	if ok, _ := ver.Check(epoch); ok {
		t.Fatal("out-of-tolerance change not detected")
	}
}

func TestExternalInfoNotifierMode(t *testing.T) {
	src := NewExternalVar("quote", 100)
	x := NewExternalInfo(src, ByNotifier, 0)
	pushed := 0
	x.NotifyChange = func() { pushed++ }

	// Attachment hooks the source.
	x.OnEvent(&EventContext{}, event.Event{Kind: event.SetProperty, Property: x.Name()})
	// Duplicate attach must not double-hook.
	x.OnEvent(&EventContext{}, event.Event{Kind: event.SetProperty, Property: x.Name()})

	rc := &ReadContext{Now: epoch}
	x.WrapInput(rc)
	if n := len(rc.Result().Verifiers); n != 0 {
		t.Fatalf("notifier mode returned %d verifiers, want 0", n)
	}
	src.Set(50)
	if pushed != 1 {
		t.Fatalf("pushed = %d, want 1", pushed)
	}
}
