package property

import (
	"errors"
	"strings"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

var epoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

func TestTTLVerifier(t *testing.T) {
	v := NewTTLVerifier(epoch, 30*time.Second)
	if ok, err := v.Check(epoch.Add(29 * time.Second)); !ok || err != nil {
		t.Fatalf("fresh entry invalid: %v %v", ok, err)
	}
	if ok, _ := v.Check(epoch.Add(30 * time.Second)); !ok {
		t.Fatal("entry at exact expiry should still be valid")
	}
	if ok, _ := v.Check(epoch.Add(31 * time.Second)); ok {
		t.Fatal("expired entry reported valid")
	}
	if v.Name() != "ttl" {
		t.Fatalf("Name = %q", v.Name())
	}
}

func TestMTimeVerifierDetectsSourceChange(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	m := repo.NewMem("src", clk, simnet.NewPath("p", 1))
	m.Store("/f", []byte("v1"))
	meta, _ := m.Stat("/f")
	v := MTimeVerifier{Repo: m, Path: "/f", ModTime: meta.ModTime, Version: meta.Version}

	if ok, err := v.Check(clk.Now()); !ok || err != nil {
		t.Fatalf("unchanged source invalid: %v %v", ok, err)
	}
	clk.Advance(time.Minute)
	m.UpdateDirect("/f", []byte("v2")) // out-of-band change
	if ok, _ := v.Check(clk.Now()); ok {
		t.Fatal("mtime verifier missed out-of-band update")
	}
	if !strings.Contains(v.Name(), "src") {
		t.Fatalf("Name = %q", v.Name())
	}
}

func TestMTimeVerifierSourceGone(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	m := repo.NewMem("src", clk, simnet.NewPath("p", 1))
	m.Store("/f", []byte("v1"))
	meta, _ := m.Stat("/f")
	v := MTimeVerifier{Repo: m, Path: "/f", ModTime: meta.ModTime, Version: meta.Version}
	m.Delete("/f")
	ok, err := v.Check(clk.Now())
	if ok || err == nil {
		t.Fatalf("deleted source: ok=%v err=%v, want invalid with error", ok, err)
	}
}

func TestMTimeVerifierChargesClock(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	p := simnet.NewPath("wan", 1, simnet.Link{Latency: 80 * time.Millisecond})
	m := repo.NewMem("far", clk, p)
	m.Store("/f", []byte("x"))
	meta, _ := m.Stat("/f")
	v := MTimeVerifier{Repo: m, Path: "/f", ModTime: meta.ModTime, Version: meta.Version}
	before := clk.Now()
	v.Check(before)
	if got := clk.Now().Sub(before); got != 80*time.Millisecond {
		t.Fatalf("verifier check charged %v, want the Stat round trip", got)
	}
}

func TestFuncVerifier(t *testing.T) {
	calls := 0
	v := FuncVerifier{VerifierName: "custom", Fn: func(time.Time) (bool, error) {
		calls++
		return calls < 3, nil
	}}
	if ok, _ := v.Check(epoch); !ok {
		t.Fatal("first check should pass")
	}
	v.Check(epoch)
	if ok, _ := v.Check(epoch); ok {
		t.Fatal("third check should fail")
	}
	if v.Name() != "custom" {
		t.Fatalf("Name = %q", v.Name())
	}
}

func TestFuncVerifierNilFn(t *testing.T) {
	v := FuncVerifier{VerifierName: "nil"}
	if ok, err := v.Check(epoch); ok || err == nil {
		t.Fatal("nil Fn must be invalid with error")
	}
}

func TestCompositeAllMustPass(t *testing.T) {
	pass := FuncVerifier{VerifierName: "p", Fn: func(time.Time) (bool, error) { return true, nil }}
	fail := FuncVerifier{VerifierName: "f", Fn: func(time.Time) (bool, error) { return false, nil }}
	if ok, _ := (Composite{Parts: []Verifier{pass, pass}}).Check(epoch); !ok {
		t.Fatal("all-pass composite failed")
	}
	if ok, _ := (Composite{Parts: []Verifier{pass, fail}}).Check(epoch); ok {
		t.Fatal("composite with failing part passed")
	}
	if ok, _ := (Composite{}).Check(epoch); !ok {
		t.Fatal("empty composite should pass")
	}
}

func TestCompositeShortCircuits(t *testing.T) {
	fail := FuncVerifier{VerifierName: "f", Fn: func(time.Time) (bool, error) { return false, nil }}
	called := false
	spy := FuncVerifier{VerifierName: "s", Fn: func(time.Time) (bool, error) { called = true; return true, nil }}
	(Composite{Parts: []Verifier{fail, spy}}).Check(epoch)
	if called {
		t.Fatal("composite did not short-circuit after failure")
	}
}

func TestCompositePropagatesError(t *testing.T) {
	boom := FuncVerifier{VerifierName: "b", Fn: func(time.Time) (bool, error) { return false, errors.New("poll failed") }}
	ok, err := (Composite{Parts: []Verifier{boom}}).Check(epoch)
	if ok || err == nil {
		t.Fatal("composite swallowed part error")
	}
}

func TestThresholdTolerance(t *testing.T) {
	quote := 100.0
	v := Threshold{VerifierName: "XRX", Source: func() float64 { return quote }, Reference: 100, Tolerance: 5}
	if ok, _ := v.Check(epoch); !ok {
		t.Fatal("unchanged quote invalid")
	}
	quote = 104.9
	if ok, _ := v.Check(epoch); !ok {
		t.Fatal("in-tolerance change invalidated")
	}
	quote = 94.0
	if ok, _ := v.Check(epoch); ok {
		t.Fatal("significant drop not detected")
	}
	quote = 106.0
	if ok, _ := v.Check(epoch); ok {
		t.Fatal("significant rise not detected")
	}
	if !strings.Contains(v.Name(), "XRX") {
		t.Fatalf("Name = %q", v.Name())
	}
}

func TestThresholdNilSource(t *testing.T) {
	v := Threshold{VerifierName: "n"}
	if ok, err := v.Check(epoch); ok || err == nil {
		t.Fatal("nil source must be invalid with error")
	}
}
