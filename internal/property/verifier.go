package property

import (
	"errors"
	"fmt"
	"time"

	"placeless/internal/repo"
)

// TTLVerifier invalidates a cache entry once a freshness deadline
// passes — the mechanism web servers of the era offered, implemented
// at the cache exactly as the paper suggests: "if the cached document
// were a WWW document, the verifier could implement the TTL timeout as
// specified in the HTTP response."
type TTLVerifier struct {
	// Expiry is the instant after which the entry is invalid.
	Expiry time.Time
}

// Name implements Verifier.
func (TTLVerifier) Name() string { return "ttl" }

// Check implements Verifier: valid while now <= Expiry.
func (v TTLVerifier) Check(now time.Time) (bool, error) {
	return !now.After(v.Expiry), nil
}

// NewTTLVerifier builds a TTLVerifier expiring ttl after fetch time.
func NewTTLVerifier(fetched time.Time, ttl time.Duration) TTLVerifier {
	return TTLVerifier{Expiry: fetched.Add(ttl)}
}

// MTimeVerifier polls the original repository's modification time on
// every cache hit and invalidates when the source changed — the
// paper's example of the bit-provider returning "a verifier that polls
// the last-modification time of the file". Each Check performs a Stat,
// charging that round trip to the simulation clock; this is the
// latency side of the verifier-vs-notifier tradeoff measured in
// experiment E1.
type MTimeVerifier struct {
	// Repo is the original source.
	Repo repo.Repository
	// Path is the document's path within Repo.
	Path string
	// ModTime and Version are the source metadata captured at fetch
	// time; a change in either invalidates.
	ModTime time.Time
	Version int64
}

// Name implements Verifier.
func (v MTimeVerifier) Name() string { return "mtime:" + v.Repo.Name() }

// Check implements Verifier by polling the source.
func (v MTimeVerifier) Check(time.Time) (bool, error) {
	meta, err := v.Repo.Stat(v.Path)
	if err != nil {
		return false, err
	}
	return meta.ModTime.Equal(v.ModTime) && meta.Version == v.Version, nil
}

// FuncVerifier adapts an arbitrary predicate, for property-specific
// validity conditions.
type FuncVerifier struct {
	// VerifierName is returned by Name.
	VerifierName string
	// Fn is the validity predicate.
	Fn func(now time.Time) (bool, error)
}

// Name implements Verifier.
func (f FuncVerifier) Name() string { return f.VerifierName }

// Check implements Verifier.
func (f FuncVerifier) Check(now time.Time) (bool, error) {
	if f.Fn == nil {
		return false, errors.New("property: FuncVerifier with nil Fn")
	}
	return f.Fn(now)
}

// Composite combines verifiers for documents assembled from several
// sources ("news summaries constructed from several web sites; in that
// case, verifiers can check the consistency of each of the sources").
// The entry is valid only if every part is.
type Composite struct {
	// Parts are the per-source verifiers.
	Parts []Verifier
}

// Name implements Verifier.
func (c Composite) Name() string { return fmt.Sprintf("composite(%d)", len(c.Parts)) }

// Check implements Verifier: all parts must pass. Checking stops at
// the first failure, so cheap verifiers should be listed first.
func (c Composite) Check(now time.Time) (bool, error) {
	for _, p := range c.Parts {
		ok, err := p.Check(now)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Threshold invalidates only when an external numeric source has
// drifted beyond a tolerance — the paper's "financial portfolio page"
// example where "the verifier may invalidate the cached entry only if
// there has been significant change in the stock quotes". Small
// fluctuations keep serving the cached page.
type Threshold struct {
	// VerifierName labels the tracked quantity.
	VerifierName string
	// Source samples the external value (e.g. a stock quote).
	Source func() float64
	// Reference is the value embedded in the cached content.
	Reference float64
	// Tolerance is the maximum |source - reference| considered
	// insignificant.
	Tolerance float64
}

// Name implements Verifier.
func (t Threshold) Name() string { return "threshold:" + t.VerifierName }

// Check implements Verifier.
func (t Threshold) Check(time.Time) (bool, error) {
	if t.Source == nil {
		return false, errors.New("property: Threshold with nil Source")
	}
	diff := t.Source() - t.Reference
	if diff < 0 {
		diff = -diff
	}
	return diff <= t.Tolerance, nil
}
