// Full-stack integration tests: repository → document space → TCP
// server → client → remote cache, exercising the complete deployment
// the paper describes (applications with a co-located cache talking to
// remote Placeless servers).
package placeless

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/nfs"
	"placeless/internal/property"
	"placeless/internal/remote"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

var integEpoch = time.Date(1999, time.March, 28, 0, 0, 0, 0, time.UTC)

// startServer boots a server on loopback and returns its address.
func startServer(t *testing.T) (string, *docspace.Space, *repo.Mem) {
	t.Helper()
	clk := clock.NewVirtual(integEpoch)
	backing := repo.NewMem("srv", clk, simnet.NewPath("loop", 1))
	space := docspace.New(clk, repo.NewDMS("dms", clk, simnet.NewPath("loop", 2)))
	srv := server.New(space, backing)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start")
	}
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return addr, space, backing
}

func TestFullStackCollaboration(t *testing.T) {
	addr, _, _ := startServer(t)

	// Two client machines, each with its own connection and local
	// cache.
	dial := func() (*server.Client, *remote.Cache) {
		c, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c, remote.New(c, remote.Options{})
	}
	eyalClient, eyalCache := dial()
	_, dougCache := dial()

	// Eyal creates the draft and personalizes with spell correction.
	if err := eyalClient.CreateDocument("hotos", "eyal", []byte("teh draft, v1")); err != nil {
		t.Fatal(err)
	}
	if err := eyalClient.AddReference("hotos", "doug"); err != nil {
		t.Fatal(err)
	}
	if err := eyalClient.Attach("hotos", "eyal", true, "spell-correct"); err != nil {
		t.Fatal(err)
	}

	// Both machines read through their caches.
	eyalView, err := eyalCache.Read("hotos", "eyal")
	if err != nil || string(eyalView) != "the draft, v1" {
		t.Fatalf("eyal view = %q, %v", eyalView, err)
	}
	dougView, err := dougCache.Read("hotos", "doug")
	if err != nil || string(dougView) != "teh draft, v1" {
		t.Fatalf("doug view = %q, %v", dougView, err)
	}

	// Warm both caches, then Doug writes from his machine; Eyal's
	// machine receives the invalidation push over its own connection.
	eyalCache.Read("hotos", "eyal")
	if err := dougCache.Write("hotos", "doug", []byte("teh draft, v2 by doug")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && eyalCache.Contains("hotos", "eyal") {
		time.Sleep(2 * time.Millisecond)
	}
	if eyalCache.Contains("hotos", "eyal") {
		t.Fatal("cross-machine invalidation never arrived")
	}
	fresh, err := eyalCache.Read("hotos", "eyal")
	if err != nil || string(fresh) != "the draft, v2 by doug" {
		t.Fatalf("eyal fresh view = %q, %v", fresh, err)
	}
}

func TestFullStackConcurrentMachines(t *testing.T) {
	addr, _, _ := startServer(t)
	setup, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if err := setup.CreateDocument("shared", "owner", []byte("concurrent content")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			cache := remote.New(c, remote.Options{})
			for j := 0; j < 20; j++ {
				data, err := cache.Read("shared", "owner")
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, []byte("concurrent content")) {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFullStackNFSOverLocalSpace(t *testing.T) {
	// The in-process variant: off-the-shelf file access through the
	// NFS layer with a shared application cache, versioning on the
	// base, and compression storage.
	clk := clock.NewVirtual(integEpoch)
	disk := repo.NewMem("disk", clk, simnet.Local(1))
	archive := repo.NewDMS("dms", clk, simnet.Local(2))
	space := docspace.New(clk, archive)
	cache := core.New(space, core.Options{Name: "app"})

	disk.Store("/report", []byte("quarterly report: draft"))
	if _, err := space.CreateDocument("report", "alice", &property.RepoBitProvider{Repo: disk, Path: "/report"}); err != nil {
		t.Fatal(err)
	}
	if err := space.Attach("report", "", docspace.Universal, property.NewVersioning()); err != nil {
		t.Fatal(err)
	}
	if err := space.Attach("report", "", docspace.Universal, property.NewCompressor(6, 0)); err != nil {
		t.Fatal(err)
	}

	fs := nfs.MountCached(cache, space, "alice")
	f, err := fs.Create("report")
	if err != nil {
		t.Fatal(err)
	}
	body := strings.Repeat("results improved across the board. ", 40)
	f.Write([]byte(body))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Stored bytes are compressed; the view through NFS is plain.
	stored, _ := disk.Fetch("/report")
	if len(stored.Data) >= len(body) {
		t.Fatalf("stored %d bytes uncompressed", len(stored.Data))
	}
	got, err := fs.ReadFile("report")
	if err != nil || string(got) != body {
		t.Fatalf("read-back mismatch: %d bytes, %v", len(got), err)
	}
	// The pre-write content was archived (uncompressed snapshot of
	// the transformed view at write time).
	if n := archive.Versions("/archive/report/version-1"); n != 1 {
		t.Fatalf("archive versions = %d", n)
	}
}
