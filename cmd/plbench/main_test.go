package main

import (
	"os"
	"strings"
	"testing"
)

// sink returns a throwaway file for run output.
func sink(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "plbench")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run(sink(t), "nonsense", 1, 1, "table")
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunEachExperiment(t *testing.T) {
	// Smoke-run every experiment with tiny iteration counts; the
	// shape assertions live in internal/experiment's tests.
	for _, which := range []string{
		"table1", "sharing", "cacheability", "chains", "collection",
	} {
		if err := run(sink(t), which, 1, 1, "table"); err != nil {
			t.Fatalf("run(%s): %v", which, err)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	f := sink(t)
	if err := run(f, "table1", 1, 1, "csv"); err != nil {
		t.Fatal(err)
	}
	f.Seek(0, 0)
	buf := make([]byte, 4096)
	n, _ := f.Read(buf)
	out := string(buf[:n])
	if !strings.Contains(out, "Original Source,size (bytes)") {
		t.Fatalf("csv output missing header: %q", out)
	}
	if !strings.Contains(out, `www.gatech.edu,"10,883"`) {
		t.Fatalf("csv quoting wrong: %q", out)
	}
}

func TestRunHeavyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiments skipped in -short mode")
	}
	for _, which := range []string{"notifier-verifier", "replacement", "qos"} {
		if err := run(sink(t), which, 1, 1, "table"); err != nil {
			t.Fatalf("run(%s): %v", which, err)
		}
	}
}
