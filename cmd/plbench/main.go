// Command plbench regenerates the paper's evaluation and this
// repository's extension experiments (see DESIGN.md §4 for the
// experiment index).
//
// Usage:
//
//	plbench [-seed N] [-iters N] [-format table|csv] <experiment>
//
// Experiments:
//
//	table1             Table 1: access times, no-cache / miss / hit (T1)
//	notifier-verifier  notifier vs verifier consistency tradeoff (E1)
//	nv-sweep           E1 across update rates (figure-style series)
//	replacement        replacement policy ablation, GDS vs baselines (E2)
//	sharing            content-signature storage sharing (E3)
//	cacheability       cacheability indicator mix (E4)
//	chains             property-chain length vs latency (E5)
//	qos                QoS-driven replacement-cost inflation (E6)
//	collection         related-document (collection) prefetching (E8)
//	cost-ablation      property-cost signal ablation for GDS (E9)
//	placement          app-side vs server-side cache placement (E10)
//	parallel           parallel hit throughput + single-flight coalescing (E11)
//	memo               universal-stage memoization fan-out (E12)
//	obs                observability overhead + per-stage timings (E13)
//	resilience         connection resilience: crash/restart + deadlines (E14)
//	wire               wire protocol v1 gob vs v2 pipelined binary (E15)
//	cluster            consistent-hash cluster scaling (E16)
//	prefix             longest-shared-prefix chain caching (E17)
//	swarm              trace-driven swarm latency/staleness/cost frontier (E18)
//	all                run everything
//
// Alternatively, -experiment <index> (currently e12–e18) runs one
// experiment by its DESIGN.md index and additionally writes its result
// as BENCH_<index>.json (BENCH_wire.json for e15, BENCH_cluster.json
// for e16, BENCH_prefix.json for e17, BENCH_swarm.json for e18) in the
// working directory, for machine consumers (CI trend tracking).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"placeless/internal/experiment"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	iters := flag.Int("iters", 5, "iterations per Table 1 cell")
	format := flag.String("format", "table", "output format: table or csv")
	expIndex := flag.String("experiment", "", "run one experiment by index (e.g. e12) and write BENCH_<index>.json")
	flag.Parse()
	if *expIndex != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: plbench [-seed N] -experiment <e12|e13|e14|e15|e16|e17|e18>")
			os.Exit(2)
		}
		if err := runIndexed(os.Stdout, *expIndex, *seed, *format); err != nil {
			fmt.Fprintf(os.Stderr, "plbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 || (*format != "table" && *format != "csv") {
		fmt.Fprintln(os.Stderr, "usage: plbench [-seed N] [-iters N] [-format table|csv] <table1|notifier-verifier|nv-sweep|replacement|sharing|cacheability|chains|qos|collection|cost-ablation|placement|parallel|memo|obs|resilience|wire|cluster|prefix|swarm|all>")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *seed, *iters, *format); err != nil {
		fmt.Fprintf(os.Stderr, "plbench: %v\n", err)
		os.Exit(1)
	}
}

// runIndexed runs one experiment selected by its DESIGN.md index,
// prints the table, and writes the raw result struct as
// BENCH_<index>.json.
func runIndexed(w *os.File, index string, seed int64, format string) error {
	var res experiment.Result
	var title string
	switch index {
	case "e12":
		cfg := experiment.DefaultMemoConfig()
		cfg.Seed = seed
		r, err := experiment.RunMemo(cfg)
		if err != nil {
			return err
		}
		res, title = r, fmt.Sprintf("E12 — universal-stage memoization (doc=%dB chain=3×%v personal=%v rounds=%d)",
			cfg.DocSize, cfg.PropCost, cfg.PersonalCost, cfg.Rounds)
	case "e13":
		cfg := experiment.DefaultObsConfig()
		cfg.Seed = seed
		r, err := experiment.RunObs(cfg)
		if err != nil {
			return err
		}
		res, title = r, obsTitle(cfg)
	case "e14":
		cfg := experiment.DefaultResilienceConfig()
		cfg.Seed = seed
		r, err := experiment.RunResilience(cfg)
		if err != nil {
			return err
		}
		res, title = r, resilienceTitle(cfg)
	case "e15":
		cfg := experiment.DefaultWireConfig()
		cfg.Seed = seed
		r, err := experiment.RunWire(cfg)
		if err != nil {
			return err
		}
		res, title = r, wireTitle(cfg)
	case "e16":
		cfg := experiment.DefaultClusterConfig()
		cfg.Seed = seed
		r, err := experiment.RunCluster(cfg)
		if err != nil {
			return err
		}
		res, title = r, clusterTitle(cfg)
	case "e17":
		cfg := experiment.DefaultPrefixConfig()
		cfg.Seed = seed
		r, err := experiment.RunPrefix(cfg)
		if err != nil {
			return err
		}
		res, title = r, prefixTitle(cfg)
	case "e18":
		cfg := experiment.DefaultSwarmConfig()
		cfg.Seed = seed
		r, err := experiment.RunSwarm(cfg)
		if err != nil {
			return err
		}
		res, title = r, swarmTitle(cfg)
	default:
		return fmt.Errorf("unknown experiment index %q (have: e12, e13, e14, e15, e16, e17, e18)", index)
	}
	fmt.Fprintln(w, title)
	if format == "csv" {
		fmt.Fprintln(w, res.CSV())
	} else {
		fmt.Fprintln(w, res.Table())
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out := "BENCH_" + index + ".json"
	switch index {
	case "e15":
		// E15's artifact carries the protocol name: CI asserts the
		// v2-vs-v1 ratios out of BENCH_wire.json.
		out = "BENCH_wire.json"
	case "e16":
		// E16's artifact carries the subsystem name: CI asserts the
		// scaling curve out of BENCH_cluster.json.
		out = "BENCH_cluster.json"
	case "e17":
		// E17's artifact carries the subsystem name: CI asserts the
		// shared-segment invariants out of BENCH_prefix.json.
		out = "BENCH_prefix.json"
	case "e18":
		// E18's artifact carries the workload name: CI asserts the
		// frontier's live cells out of BENCH_swarm.json.
		out = "BENCH_swarm.json"
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}

// run executes the selected experiment(s), writing results to w in the
// chosen format.
func run(w *os.File, which string, seed int64, iters int, format string) error {
	all := which == "all"
	ran := false

	emit := func(title string, res experiment.Result) {
		fmt.Fprintln(w, title)
		if format == "csv" {
			fmt.Fprintln(w, res.CSV())
		} else {
			fmt.Fprintln(w, res.Table())
		}
	}

	if all || which == "table1" {
		ran = true
		res, err := experiment.RunTable1(seed, iters)
		if err != nil {
			return err
		}
		emit("T1 — Table 1: document content access times (application-level cache)", res)
	}
	if all || which == "notifier-verifier" {
		ran = true
		cfg := experiment.DefaultNVConfig()
		cfg.Seed = seed
		res, err := experiment.RunNotifierVerifier(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E1 — notifier vs verifier (docs=%d reads=%d update every %d, %.0f%% out-of-band)",
			cfg.Docs, cfg.Reads, cfg.UpdateEvery, cfg.OutsideFrac*100), res)
	}
	if all || which == "nv-sweep" {
		ran = true
		cfg := experiment.DefaultNVConfig()
		cfg.Seed = seed
		res, err := experiment.RunNotifierVerifierSweep(cfg, experiment.DefaultNVSweepRates())
		if err != nil {
			return err
		}
		emit("E1b — notifier vs verifier across update rates (updates per read)", res)
	}
	if all || which == "replacement" {
		ran = true
		cfg := experiment.DefaultReplacementConfig()
		cfg.Seed = seed
		res, err := experiment.RunReplacement(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E2 — replacement policies (docs=%d reads=%d zipf=%.2f capacity=%.0f%%)",
			cfg.Docs, cfg.Reads, cfg.Alpha, cfg.CapacityFrac*100), res)
	}
	if all || which == "sharing" {
		ran = true
		cfg := experiment.DefaultSharingConfig()
		cfg.Seed = seed
		res, err := experiment.RunSharing(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E3 — signature sharing (docs=%d users=%d)", cfg.Docs, cfg.Users), res)
	}
	if all || which == "cacheability" {
		ran = true
		cfg := experiment.DefaultCacheabilityConfig()
		cfg.Seed = seed
		res, err := experiment.RunCacheability(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E4 — cacheability mix (docs=%d reads=%d)", cfg.Docs, cfg.Reads), res)
	}
	if all || which == "chains" {
		ran = true
		cfg := experiment.DefaultChainsConfig()
		cfg.Seed = seed
		res, err := experiment.RunChains(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E5 — property chains (cost/property=%v doc=%dB)", cfg.PropCost, cfg.DocSize), res)
	}
	if all || which == "qos" {
		ran = true
		cfg := experiment.DefaultQoSConfig()
		cfg.Seed = seed
		res, err := experiment.RunQoS(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E6 — QoS cost inflation (background docs=%d reads=%d factor=%.0fx)",
			cfg.BackgroundDocs, cfg.Reads, cfg.CostFactor), res)
	}
	if all || which == "collection" {
		ran = true
		cfg := experiment.DefaultCollectionConfig()
		cfg.Seed = seed
		res, err := experiment.RunCollection(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E8 — collection prefetching (members=%d size=%dB, WAN-hosted)", cfg.Members, cfg.DocSize), res)
	}
	if all || which == "cost-ablation" {
		ran = true
		cfg := experiment.DefaultReplacementConfig()
		cfg.Seed = seed
		res, err := experiment.RunCostAblation(cfg)
		if err != nil {
			return err
		}
		emit("E9 — replacement-cost signal ablation (GDS, same workload as E2)", res)
	}
	if all || which == "placement" {
		ran = true
		cfg := experiment.DefaultPlacementConfig()
		cfg.Seed = seed
		res, err := experiment.RunPlacement(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E10 — cache placement (docs=%d reads=%d link=%v app-capacity=%.0f%%)",
			cfg.Docs, cfg.Reads, cfg.LinkCost, cfg.AppCapacityFrac*100), res)
	}
	if all || which == "parallel" {
		ran = true
		cfg := experiment.DefaultParallelConfig()
		cfg.Seed = seed
		res, err := experiment.RunParallel(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E11 — parallel hit throughput, sharded vs seed global mutex (docs=%d ops/goroutine=%d hit-cost=%v, real clock: rates are machine-dependent, compare the speedup column)",
			cfg.Docs, cfg.OpsPerGoroutine, cfg.HitCost), res)
	}
	if all || which == "memo" {
		ran = true
		cfg := experiment.DefaultMemoConfig()
		cfg.Seed = seed
		res, err := experiment.RunMemo(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E12 — universal-stage memoization (doc=%dB chain=3×%v personal=%v rounds=%d)",
			cfg.DocSize, cfg.PropCost, cfg.PersonalCost, cfg.Rounds), res)
	}
	if all || which == "obs" {
		ran = true
		cfg := experiment.DefaultObsConfig()
		cfg.Seed = seed
		res, err := experiment.RunObs(cfg)
		if err != nil {
			return err
		}
		emit(obsTitle(cfg), res)
	}
	if all || which == "resilience" {
		ran = true
		cfg := experiment.DefaultResilienceConfig()
		cfg.Seed = seed
		res, err := experiment.RunResilience(cfg)
		if err != nil {
			return err
		}
		emit(resilienceTitle(cfg), res)
	}
	if all || which == "wire" {
		ran = true
		cfg := experiment.DefaultWireConfig()
		cfg.Seed = seed
		res, err := experiment.RunWire(cfg)
		if err != nil {
			return err
		}
		emit(wireTitle(cfg), res)
	}
	if all || which == "cluster" {
		ran = true
		cfg := experiment.DefaultClusterConfig()
		cfg.Seed = seed
		res, err := experiment.RunCluster(cfg)
		if err != nil {
			return err
		}
		emit(clusterTitle(cfg), res)
	}
	if all || which == "prefix" {
		ran = true
		cfg := experiment.DefaultPrefixConfig()
		cfg.Seed = seed
		res, err := experiment.RunPrefix(cfg)
		if err != nil {
			return err
		}
		emit(prefixTitle(cfg), res)
	}
	if all || which == "swarm" {
		ran = true
		cfg := experiment.DefaultSwarmConfig()
		cfg.Seed = seed
		res, err := experiment.RunSwarm(cfg)
		if err != nil {
			return err
		}
		emit(swarmTitle(cfg), res)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}

// resilienceTitle renders E14's parameter line.
func resilienceTitle(cfg experiment.ResilienceConfig) string {
	return fmt.Sprintf("E14 — connection resilience: crash/restart per degraded policy + wedged-server deadlines (docs=%d backoff=%v..%v wedged-deadline=%v, real TCP/clock: compare counters and the deadline ratio)",
		cfg.Docs, cfg.BackoffBase, cfg.BackoffMax, cfg.WedgedTimeout)
}

// wireTitle renders E15's parameter line.
func wireTitle(cfg experiment.WireConfig) string {
	return fmt.Sprintf("E15 — wire protocol v1 gob vs v2 pipelined binary (ops=%d concurrency=%d sizes=%v, loopback TCP/real clock: compare the v2/v1 ratio rows)",
		cfg.Ops, cfg.Concurrency, cfg.BlobSizes)
}

// clusterTitle renders E16's parameter line.
func clusterTitle(cfg experiment.ClusterConfig) string {
	return fmt.Sprintf("E16 — consistent-hash cluster scaling (nodes=%v keys=%d reads=%d replicas=%d vnodes=%d, virtual per-node service time: compare the speedup column)",
		cfg.Nodes, cfg.Docs*cfg.Users, cfg.Reads, cfg.Replicas, cfg.VNodes)
}

// prefixTitle renders E17's parameter line.
func prefixTitle(cfg experiment.PrefixConfig) string {
	return fmt.Sprintf("E17 — longest-shared-prefix chain caching (doc=%dB universal=2×%v shared=%v personal=%v, cold miss storm)",
		cfg.DocSize, cfg.UniversalCost, cfg.SharedCost, cfg.PersonalCost)
}

// swarmTitle renders E18's parameter line.
func swarmTitle(cfg experiment.SwarmConfig) string {
	return fmt.Sprintf("E18 — trace-driven swarm frontier (users=%d docs=%d ops=%d zipf=%.2f flash=%.0fx nodes=%d workers=%d, real clock: latency columns are machine-dependent, counts are seed-deterministic)",
		cfg.Users, cfg.Docs, cfg.Ops, cfg.Alpha, cfg.FlashBoost, cfg.Nodes, cfg.Workers)
}

// obsTitle renders E13's parameter line.
func obsTitle(cfg experiment.ObsConfig) string {
	return fmt.Sprintf("E13 — observability overhead + stage timings (docs=%d goroutines=%d hit-cost=%v, real clock: rates are machine-dependent, compare the overhead rows)",
		cfg.Docs, cfg.Goroutines, cfg.HitCost)
}
