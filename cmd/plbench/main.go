// Command plbench regenerates the paper's evaluation and this
// repository's extension experiments (see DESIGN.md §4 for the
// experiment index).
//
// Usage:
//
//	plbench [-seed N] [-iters N] [-format table|csv] <experiment>
//
// Experiments:
//
//	table1             Table 1: access times, no-cache / miss / hit (T1)
//	notifier-verifier  notifier vs verifier consistency tradeoff (E1)
//	nv-sweep           E1 across update rates (figure-style series)
//	replacement        replacement policy ablation, GDS vs baselines (E2)
//	sharing            content-signature storage sharing (E3)
//	cacheability       cacheability indicator mix (E4)
//	chains             property-chain length vs latency (E5)
//	qos                QoS-driven replacement-cost inflation (E6)
//	collection         related-document (collection) prefetching (E8)
//	cost-ablation      property-cost signal ablation for GDS (E9)
//	placement          app-side vs server-side cache placement (E10)
//	parallel           parallel hit throughput + single-flight coalescing (E11)
//	all                run everything
package main

import (
	"flag"
	"fmt"
	"os"

	"placeless/internal/experiment"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	iters := flag.Int("iters", 5, "iterations per Table 1 cell")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()
	if flag.NArg() != 1 || (*format != "table" && *format != "csv") {
		fmt.Fprintln(os.Stderr, "usage: plbench [-seed N] [-iters N] [-format table|csv] <table1|notifier-verifier|nv-sweep|replacement|sharing|cacheability|chains|qos|collection|cost-ablation|placement|parallel|all>")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *seed, *iters, *format); err != nil {
		fmt.Fprintf(os.Stderr, "plbench: %v\n", err)
		os.Exit(1)
	}
}

// run executes the selected experiment(s), writing results to w in the
// chosen format.
func run(w *os.File, which string, seed int64, iters int, format string) error {
	all := which == "all"
	ran := false

	emit := func(title string, res experiment.Result) {
		fmt.Fprintln(w, title)
		if format == "csv" {
			fmt.Fprintln(w, res.CSV())
		} else {
			fmt.Fprintln(w, res.Table())
		}
	}

	if all || which == "table1" {
		ran = true
		res, err := experiment.RunTable1(seed, iters)
		if err != nil {
			return err
		}
		emit("T1 — Table 1: document content access times (application-level cache)", res)
	}
	if all || which == "notifier-verifier" {
		ran = true
		cfg := experiment.DefaultNVConfig()
		cfg.Seed = seed
		res, err := experiment.RunNotifierVerifier(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E1 — notifier vs verifier (docs=%d reads=%d update every %d, %.0f%% out-of-band)",
			cfg.Docs, cfg.Reads, cfg.UpdateEvery, cfg.OutsideFrac*100), res)
	}
	if all || which == "nv-sweep" {
		ran = true
		cfg := experiment.DefaultNVConfig()
		cfg.Seed = seed
		res, err := experiment.RunNotifierVerifierSweep(cfg, experiment.DefaultNVSweepRates())
		if err != nil {
			return err
		}
		emit("E1b — notifier vs verifier across update rates (updates per read)", res)
	}
	if all || which == "replacement" {
		ran = true
		cfg := experiment.DefaultReplacementConfig()
		cfg.Seed = seed
		res, err := experiment.RunReplacement(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E2 — replacement policies (docs=%d reads=%d zipf=%.2f capacity=%.0f%%)",
			cfg.Docs, cfg.Reads, cfg.Alpha, cfg.CapacityFrac*100), res)
	}
	if all || which == "sharing" {
		ran = true
		cfg := experiment.DefaultSharingConfig()
		cfg.Seed = seed
		res, err := experiment.RunSharing(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E3 — signature sharing (docs=%d users=%d)", cfg.Docs, cfg.Users), res)
	}
	if all || which == "cacheability" {
		ran = true
		cfg := experiment.DefaultCacheabilityConfig()
		cfg.Seed = seed
		res, err := experiment.RunCacheability(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E4 — cacheability mix (docs=%d reads=%d)", cfg.Docs, cfg.Reads), res)
	}
	if all || which == "chains" {
		ran = true
		cfg := experiment.DefaultChainsConfig()
		cfg.Seed = seed
		res, err := experiment.RunChains(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E5 — property chains (cost/property=%v doc=%dB)", cfg.PropCost, cfg.DocSize), res)
	}
	if all || which == "qos" {
		ran = true
		cfg := experiment.DefaultQoSConfig()
		cfg.Seed = seed
		res, err := experiment.RunQoS(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E6 — QoS cost inflation (background docs=%d reads=%d factor=%.0fx)",
			cfg.BackgroundDocs, cfg.Reads, cfg.CostFactor), res)
	}
	if all || which == "collection" {
		ran = true
		cfg := experiment.DefaultCollectionConfig()
		cfg.Seed = seed
		res, err := experiment.RunCollection(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E8 — collection prefetching (members=%d size=%dB, WAN-hosted)", cfg.Members, cfg.DocSize), res)
	}
	if all || which == "cost-ablation" {
		ran = true
		cfg := experiment.DefaultReplacementConfig()
		cfg.Seed = seed
		res, err := experiment.RunCostAblation(cfg)
		if err != nil {
			return err
		}
		emit("E9 — replacement-cost signal ablation (GDS, same workload as E2)", res)
	}
	if all || which == "placement" {
		ran = true
		cfg := experiment.DefaultPlacementConfig()
		cfg.Seed = seed
		res, err := experiment.RunPlacement(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E10 — cache placement (docs=%d reads=%d link=%v app-capacity=%.0f%%)",
			cfg.Docs, cfg.Reads, cfg.LinkCost, cfg.AppCapacityFrac*100), res)
	}
	if all || which == "parallel" {
		ran = true
		cfg := experiment.DefaultParallelConfig()
		cfg.Seed = seed
		res, err := experiment.RunParallel(cfg)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("E11 — parallel hit throughput, sharded vs seed global mutex (docs=%d ops/goroutine=%d hit-cost=%v, real clock: rates are machine-dependent, compare the speedup column)",
			cfg.Docs, cfg.OpsPerGoroutine, cfg.HitCost), res)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
