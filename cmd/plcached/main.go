// Command plcached runs a client-side Placeless document cache as a
// sidecar daemon: the paper's "cache on the machine where applications
// are run", exposed to local applications over HTTP. It dials a
// placelessd server with the full resilience configuration — call
// deadlines, automatic reconnection with backoff, subscription replay
// and epoch flush — and serves reads from its cache, falling into an
// explicit degraded mode (fail-fast or bounded serve-stale) while the
// server is unreachable.
//
// Usage:
//
//	plcached -server HOST:7999 [-addr :7998] [-capacity BYTES]
//	         [-policy fail-fast|serve-stale] [-stale-ttl 5m]
//	         [-call-timeout 10s] [-backoff-base 50ms] [-backoff-max 5s]
//
// Endpoints:
//
//	GET /doc/<id>?user=U     read a document view (503 while degraded)
//	PUT /doc/<id>?user=U     write document content through the wire
//	GET /status              connection state, epoch, counters (JSON)
//	GET /metrics             Prometheus text exposition
//	GET /debug/traces        recent per-read traces (JSON)
//	GET /debug/pprof/        standard pprof handlers
//
// While the server is unreachable, reads answer 503 Service Unavailable
// with a Retry-After hint (fail-fast), or keep serving cached content
// inside the staleness bound (serve-stale). See DESIGN.md §9 and
// docs/OPERATIONS.md for the failure model and the operator runbook.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"placeless/internal/obs"
	"placeless/internal/remote"
	"placeless/internal/server"
)

func main() {
	serverAddr := flag.String("server", "", "placelessd TCP address to dial (required)")
	addr := flag.String("addr", ":7998", "HTTP listen address for the data plane and observability")
	capacity := flag.Int64("capacity", 0, "cache capacity in bytes (0 = unlimited)")
	policy := flag.String("policy", "fail-fast", "degraded-mode policy: fail-fast or serve-stale")
	staleTTL := flag.Duration("stale-ttl", 5*time.Minute, "serve-stale staleness bound, measured from disconnect (0 = unbounded)")
	callTimeout := flag.Duration("call-timeout", 10*time.Second, "per-call deadline on the wire (0 = none)")
	backoffBase := flag.Duration("backoff-base", 50*time.Millisecond, "initial reconnect backoff")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "reconnect backoff ceiling")
	flag.Parse()
	if *serverAddr == "" {
		fmt.Fprintln(os.Stderr, "plcached: -server is required")
		flag.Usage()
		os.Exit(2)
	}

	var degraded remote.DegradedPolicy
	switch *policy {
	case "fail-fast":
		degraded = remote.FailFast
	case "serve-stale":
		degraded = remote.ServeStale
	default:
		log.Fatalf("plcached: unknown -policy %q (fail-fast or serve-stale)", *policy)
	}

	client, err := server.Dial(*serverAddr,
		server.WithCallTimeout(*callTimeout),
		server.WithReconnect(*backoffBase, *backoffMax))
	if err != nil {
		log.Fatalf("plcached: dial %s: %v", *serverAddr, err)
	}
	defer client.Close()

	observer := obs.NewObserver()
	cache := remote.New(client, remote.Options{
		Capacity:       *capacity,
		Observer:       observer,
		DegradedPolicy: degraded,
		StaleTTL:       *staleTTL,
	})

	mux := http.NewServeMux()
	observer.Mount(mux)
	mux.HandleFunc("/doc/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/doc/")
		user := r.URL.Query().Get("user")
		if id == "" {
			http.Error(w, "missing document id", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, err := cache.Read(id, user)
			if err != nil {
				writeDocError(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		case http.MethodPut, http.MethodPost:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := cache.Write(id, user, body); err != nil {
				writeDocError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		st := cache.Stats()
		var down string
		if t := client.DownSince(); !t.IsZero() {
			down = t.Format(time.RFC3339)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"server":          *serverAddr,
			"state":           client.State().String(),
			"epoch":           client.Epoch(),
			"reconnects":      st.Reconnects,
			"epoch_flushes":   st.EpochFlushes,
			"stale_served":    st.StaleServed,
			"degraded_errors": st.DegradedErrors,
			"degraded_policy": degraded.String(),
			"down_since":      down,
			"entries":         cache.Len(),
		})
	})

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "plcached: shutting down")
		cache.Close()
		client.Close()
		os.Exit(0)
	}()

	fmt.Printf("plcached: caching %s on http://%s (policy %s)\n", *serverAddr, *addr, degraded)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatalf("plcached: http: %v", err)
	}
}

// writeDocError maps cache errors to HTTP statuses: degraded mode is
// the load-shedding 503 (the client should retry after the reconnect),
// everything else is a document-level failure.
func writeDocError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, remote.ErrDegraded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, remote.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusNotFound)
	}
}
