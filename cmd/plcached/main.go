// Command plcached runs a client-side Placeless document cache as a
// sidecar daemon: the paper's "cache on the machine where applications
// are run", exposed to local applications over HTTP. It dials a
// placelessd server with the full resilience configuration — call
// deadlines, automatic reconnection with backoff, subscription replay
// and epoch flush — and serves reads from its cache, falling into an
// explicit degraded mode (fail-fast or bounded serve-stale) while the
// server is unreachable.
//
// Usage:
//
//	plcached -server HOST:7999 [-addr :7998] [-capacity BYTES]
//	         [-policy fail-fast|serve-stale] [-stale-ttl 5m]
//	         [-call-timeout 10s] [-backoff-base 50ms] [-backoff-max 5s]
//
//	plcached -cluster HOST1:7999,HOST2:7999,... [-replicas 2] [-vnodes 128]
//	         [-addr :7998] [-capacity BYTES] [-call-timeout 10s]
//	         [-backoff-base 50ms] [-backoff-max 5s]
//
// With -cluster the daemon runs one cache node per listed address and
// routes every request over a consistent-hash ring with -replicas-way
// placement: reads and writes go to the key's owners, failing over
// past degraded nodes; each node's own connection carries its own
// subscriptions, so invalidations fan out to every replica. See
// docs/CLUSTER.md for ring semantics and operating procedures.
//
// Endpoints:
//
//	GET /doc/<id>?user=U     read a document view (503 while degraded)
//	PUT /doc/<id>?user=U     write document content through the wire
//	GET /status              connection state, epoch, counters (JSON)
//	GET /ring                cluster mode: ring ownership + per-node state
//	                         (add ?doc=D&user=U for one key's owners)
//	GET /metrics             Prometheus text exposition
//	GET /debug/traces        recent per-read traces (JSON)
//	GET /debug/pprof/        standard pprof handlers
//
// While the server is unreachable, reads answer 503 Service Unavailable
// with a Retry-After hint (fail-fast), or keep serving cached content
// inside the staleness bound (serve-stale). In cluster mode a read only
// answers 503 when every owner in the key's replica set is degraded.
// See DESIGN.md §9/§13 and docs/OPERATIONS.md for the failure model and
// the operator runbooks.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"placeless/internal/cluster"
	"placeless/internal/obs"
	"placeless/internal/remote"
	"placeless/internal/server"
)

// docCache is the data-plane surface the HTTP handlers need; both
// *remote.Cache (single-server mode) and *cluster.Cache (cluster mode)
// implement it.
type docCache interface {
	Read(doc, user string) ([]byte, error)
	Write(doc, user string, data []byte) error
}

func main() {
	serverAddr := flag.String("server", "", "placelessd TCP address to dial (single-node mode)")
	clusterAddrs := flag.String("cluster", "", "comma-separated placelessd addresses: run a consistent-hash cluster with one cache node per address (mutually exclusive with -server)")
	replicas := flag.Int("replicas", 2, "cluster mode: owner-set size per key")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "cluster mode: virtual nodes per ring member")
	addr := flag.String("addr", ":7998", "HTTP listen address for the data plane and observability")
	capacity := flag.Int64("capacity", 0, "cache capacity in bytes, per node in cluster mode (0 = unlimited)")
	policy := flag.String("policy", "fail-fast", "degraded-mode policy: fail-fast or serve-stale (single-node mode; cluster nodes fail fast and the router fails over)")
	staleTTL := flag.Duration("stale-ttl", 5*time.Minute, "serve-stale staleness bound, measured from disconnect (0 = unbounded)")
	callTimeout := flag.Duration("call-timeout", 10*time.Second, "per-call deadline on the wire (0 = none)")
	backoffBase := flag.Duration("backoff-base", 50*time.Millisecond, "initial reconnect backoff")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "reconnect backoff ceiling")
	flag.Parse()
	if (*serverAddr == "") == (*clusterAddrs == "") {
		fmt.Fprintln(os.Stderr, "plcached: exactly one of -server or -cluster is required")
		flag.Usage()
		os.Exit(2)
	}

	var degraded remote.DegradedPolicy
	switch *policy {
	case "fail-fast":
		degraded = remote.FailFast
	case "serve-stale":
		degraded = remote.ServeStale
	default:
		log.Fatalf("plcached: unknown -policy %q (fail-fast or serve-stale)", *policy)
	}

	observer := obs.NewObserver()
	dial := func(target string) *server.Client {
		client, err := server.Dial(target,
			server.WithCallTimeout(*callTimeout),
			server.WithReconnect(*backoffBase, *backoffMax))
		if err != nil {
			log.Fatalf("plcached: dial %s: %v", target, err)
		}
		return client
	}

	mux := http.NewServeMux()
	observer.Mount(mux)

	var dc docCache
	var closers []func()
	var banner string

	if *clusterAddrs != "" {
		cl := cluster.New(cluster.Options{
			Replicas: *replicas,
			VNodes:   *vnodes,
			Observer: observer,
		})
		seen := map[string]int{}
		for _, target := range strings.Split(*clusterAddrs, ",") {
			target = strings.TrimSpace(target)
			if target == "" {
				continue
			}
			// A repeated address (several daemons behind one DNS name, or
			// a test cluster on one host) gets a #i-suffixed ring name so
			// each connection is its own member.
			name := target
			if n := seen[target]; n > 0 {
				name = fmt.Sprintf("%s#%d", target, n)
			}
			seen[target]++
			client := dial(target)
			// Per-node caches do not register metrics: the families are
			// process-global, and the cluster's own placeless_cluster_*
			// set is the per-fleet view (docs/METRICS.md).
			rc := remote.New(client, remote.Options{
				Capacity:       *capacity,
				DegradedPolicy: remote.FailFast,
			})
			closers = append(closers, func() { rc.Close(); _ = client.Close() })
			if err := cl.AddNode(name, rc); err != nil {
				log.Fatalf("plcached: %v", err)
			}
		}
		if len(cl.Nodes()) == 0 {
			log.Fatal("plcached: -cluster lists no addresses")
		}
		dc = cl
		banner = fmt.Sprintf("plcached: clustering %d nodes on http://%s (replicas %d)", len(cl.Nodes()), *addr, cl.Replicas())

		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			st := cl.Stats()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]interface{}{
				"mode":            "cluster",
				"replicas":        cl.Replicas(),
				"vnodes":          cl.VNodes(),
				"nodes":           cl.Info(),
				"reads":           st.Reads,
				"writes":          st.Writes,
				"failovers":       st.Failovers,
				"degraded_errors": st.DegradedErrors,
				"rebalances":      st.Rebalances,
			})
		})
		mux.HandleFunc("/ring", func(w http.ResponseWriter, r *http.Request) {
			out := map[string]interface{}{
				"replicas": cl.Replicas(),
				"vnodes":   cl.VNodes(),
				"nodes":    cl.Info(),
			}
			if doc := r.URL.Query().Get("doc"); doc != "" {
				out["doc"] = doc
				out["user"] = r.URL.Query().Get("user")
				out["owners"] = cl.Owners(doc, r.URL.Query().Get("user"))
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(out)
		})
	} else {
		client := dial(*serverAddr)
		cache := remote.New(client, remote.Options{
			Capacity:       *capacity,
			Observer:       observer,
			DegradedPolicy: degraded,
			StaleTTL:       *staleTTL,
		})
		closers = append(closers, func() { cache.Close(); _ = client.Close() })
		dc = cache
		banner = fmt.Sprintf("plcached: caching %s on http://%s (policy %s)", *serverAddr, *addr, degraded)

		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			st := cache.Stats()
			var down string
			if t := client.DownSince(); !t.IsZero() {
				down = t.Format(time.RFC3339)
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]interface{}{
				"server":          *serverAddr,
				"state":           client.State().String(),
				"epoch":           client.Epoch(),
				"reconnects":      st.Reconnects,
				"epoch_flushes":   st.EpochFlushes,
				"stale_served":    st.StaleServed,
				"degraded_errors": st.DegradedErrors,
				"degraded_policy": degraded.String(),
				"down_since":      down,
				"entries":         cache.Len(),
			})
		})
	}

	mux.HandleFunc("/doc/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/doc/")
		user := r.URL.Query().Get("user")
		if id == "" {
			http.Error(w, "missing document id", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, err := dc.Read(id, user)
			if err != nil {
				writeDocError(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		case http.MethodPut, http.MethodPost:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := dc.Write(id, user, body); err != nil {
				writeDocError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "plcached: shutting down")
		for _, c := range closers {
			c()
		}
		os.Exit(0)
	}()

	fmt.Println(banner)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatalf("plcached: http: %v", err)
	}
}

// writeDocError maps cache errors to HTTP statuses: degraded mode (one
// node's, or — in cluster mode — a whole owner set's) is the
// load-shedding 503 (the client should retry after the reconnect),
// everything else is a document-level failure.
func writeDocError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, remote.ErrDegraded),
		errors.Is(err, server.ErrDisconnected),
		errors.Is(err, server.ErrTimeout),
		errors.Is(err, cluster.ErrNoNodes):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, remote.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusNotFound)
	}
}
