// Command placelessd runs a Placeless Documents server: a document
// space exposed over TCP, backed by a directory on the local file
// system (or an in-memory store), with the standard active-property
// library available for remote attachment.
//
// Usage:
//
//	placelessd [-addr :7999] [-root DIR] [-mem] [-cache BYTES] [-memoize] [-store DIR] [-http ADDR]
//
// With -root, documents created through the server are stored as
// files under DIR, and out-of-band edits to those files are caught by
// mtime verifiers exactly as the paper describes for file-system
// repositories. With -mem, an in-memory repository is used instead.
//
// With -cache, reads are served through a server-side content cache of
// the given byte capacity (the paper's server-co-located placement);
// -memoize additionally enables universal-stage memoization.
//
// With -store, the cache is backed by a durable content-addressed disk
// tier under DIR: expensive results are written behind to append-only
// segment files and revalidated against the live property graph on the
// first miss after a restart, so a warm working set survives process
// death (requires -cache; see docs/OPERATIONS.md for the recovery
// runbook).
//
// With -http, an observability endpoint is served on ADDR: /metrics
// (Prometheus text exposition), /status (JSON: store recovery and
// cache counters), /debug/traces (recent per-read traces as JSON) and
// /debug/pprof/. See docs/OPERATIONS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/obs"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
	"placeless/internal/store"
)

func main() {
	addr := flag.String("addr", ":7999", "TCP listen address")
	root := flag.String("root", "", "directory backing document content (default: in-memory)")
	mem := flag.Bool("mem", false, "force the in-memory repository even if -root is set")
	journalPath := flag.String("journal", "", "configuration journal file; replayed at startup, appended while running")
	cacheBytes := flag.Int64("cache", 0, "server-side content cache capacity in bytes (0 = no cache)")
	memoize := flag.Bool("memoize", false, "memoize the universal transform stage (requires -cache)")
	storeDir := flag.String("store", "", "durable content-addressed disk tier directory (requires -cache)")
	httpAddr := flag.String("http", "", "HTTP observability address serving /metrics, /debug/traces and /debug/pprof (empty = disabled)")
	flag.Parse()

	clk := clock.Real{}
	fast := simnet.NewPath("local", 1) // real deployments: no simulated latency

	var backing repo.Repository
	switch {
	case *root != "" && !*mem:
		if err := os.MkdirAll(*root, 0o755); err != nil {
			log.Fatalf("placelessd: create root: %v", err)
		}
		fsRepo, err := repo.NewFS("fs", clk, fast, *root)
		if err != nil {
			log.Fatalf("placelessd: open root: %v", err)
		}
		backing = fsRepo
	default:
		backing = repo.NewMem("mem", clk, fast)
	}

	archive := repo.NewDMS("dms", clk, simnet.NewPath("local", 2))
	space := docspace.New(clk, archive)

	var observer *obs.Observer
	if *httpAddr != "" {
		observer = obs.NewObserver()
	}

	var diskTier *store.Store
	var recovery store.Recovery
	var cache *core.Cache
	var srv *server.Server
	if *cacheBytes > 0 {
		if *storeDir != "" {
			var err error
			diskTier, recovery, err = store.Open(*storeDir, store.Options{})
			if err != nil {
				log.Fatalf("placelessd: open store: %v", err)
			}
			defer diskTier.Close()
			fmt.Printf("placelessd: disk tier %s: recovered %d blobs, %d entries, %d intermediates (%d stale, %d orphaned dropped; %d blob bytes, %d meta bytes lost to torn tails)\n",
				*storeDir, recovery.Blobs, recovery.Entries, recovery.Intermediates,
				recovery.DroppedStale, recovery.DroppedNoBlob, recovery.LostBlobBytes, recovery.LostMetaBytes)
		}
		cache = core.New(space, core.Options{
			Name:     "placelessd",
			Capacity: *cacheBytes,
			Memoize:  *memoize,
			Observer: observer,
			Store:    diskTier,
		})
		defer cache.Close()
		srv = server.NewCached(space, backing, cache)
		if diskTier != nil {
			// Same tier the cache demotes into: large v2 read bodies
			// stream from the segment files instead of the heap copy.
			srv.SetStore(diskTier)
		}
	} else {
		if *memoize {
			log.Fatal("placelessd: -memoize requires -cache")
		}
		if *storeDir != "" {
			log.Fatal("placelessd: -store requires -cache")
		}
		srv = server.New(space, backing)
	}

	if observer != nil {
		reg := observer.Registry()
		reg.Counter("placeless_server_requests_total",
			"Wire requests handled by the TCP server.",
			func() int64 { r, _, _ := srv.Counters(); return r })
		reg.Counter("placeless_server_notifications_total",
			"Invalidations pushed to subscribed remote clients.",
			func() int64 { _, n, _ := srv.Counters(); return n })
		reg.Gauge("placeless_server_connections",
			"Currently open client connections.",
			func() int64 { _, _, c := srv.Counters(); return c })
		reg.Counter("placeless_server_bytes_sent_total",
			"Bytes written to client sockets across both wire protocol versions.",
			func() int64 { s, _ := srv.WireBytes(); return s })
		reg.Counter("placeless_server_bytes_received_total",
			"Bytes read from client sockets across both wire protocol versions.",
			func() int64 { _, r := srv.WireBytes(); return r })
		mux := http.NewServeMux()
		observer.Mount(mux)
		// /status: operator-facing JSON snapshot — boot-time store
		// recovery, live store footprint, and cache counters. Scraped
		// by the recovery runbook (docs/OPERATIONS.md) to confirm a
		// restart actually recovered the working set.
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			type status struct {
				Cache    *core.Stats     `json:"cache,omitempty"`
				Store    *store.Stats    `json:"store,omitempty"`
				Recovery *store.Recovery `json:"recovery,omitempty"`
			}
			var s status
			if cache != nil {
				cs := cache.Stats()
				s.Cache = &cs
			}
			if diskTier != nil {
				ss := diskTier.Stats()
				s.Store = &ss
				s.Recovery = &recovery
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(s)
		})
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Fatalf("placelessd: http: %v", err)
			}
		}()
		fmt.Printf("placelessd: observability on http://%s/metrics\n", *httpAddr)
	}

	// Durable configuration: replay a prior journal, then append new
	// configuration operations to it. Combined with -root, a restart
	// loses nothing: content lives in the file system, the property
	// graph in the journal.
	if *journalPath != "" {
		applied, err := srv.ReplayJournal(*journalPath)
		if err != nil {
			log.Fatalf("placelessd: journal replay: %v", err)
		}
		j, err := server.OpenJournal(*journalPath)
		if err != nil {
			log.Fatalf("placelessd: journal: %v", err)
		}
		defer j.Close()
		srv.SetJournal(j)
		fmt.Printf("placelessd: replayed %d configuration entries from %s\n", applied, *journalPath)
	}

	// Graceful shutdown on interrupt: close the listener and detach
	// every remote notifier before exiting.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "placelessd: shutting down")
		srv.Close()
	}()

	fmt.Printf("placelessd: serving document space on %s (backing: %s)\n", *addr, backing.Name())
	fmt.Printf("placelessd: standard properties: %v\n", server.KnownPropertySpecs())
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("placelessd: %v", err)
	}
}
