// Command placelessd runs a Placeless Documents server: a document
// space exposed over TCP, backed by a directory on the local file
// system (or an in-memory store), with the standard active-property
// library available for remote attachment.
//
// Usage:
//
//	placelessd [-addr :7999] [-root DIR] [-mem] [-cache BYTES] [-memoize] [-http ADDR]
//
// With -root, documents created through the server are stored as
// files under DIR, and out-of-band edits to those files are caught by
// mtime verifiers exactly as the paper describes for file-system
// repositories. With -mem, an in-memory repository is used instead.
//
// With -cache, reads are served through a server-side content cache of
// the given byte capacity (the paper's server-co-located placement);
// -memoize additionally enables universal-stage memoization.
//
// With -http, an observability endpoint is served on ADDR: /metrics
// (Prometheus text exposition), /debug/traces (recent per-read traces
// as JSON) and /debug/pprof/. See docs/OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/obs"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

func main() {
	addr := flag.String("addr", ":7999", "TCP listen address")
	root := flag.String("root", "", "directory backing document content (default: in-memory)")
	mem := flag.Bool("mem", false, "force the in-memory repository even if -root is set")
	journalPath := flag.String("journal", "", "configuration journal file; replayed at startup, appended while running")
	cacheBytes := flag.Int64("cache", 0, "server-side content cache capacity in bytes (0 = no cache)")
	memoize := flag.Bool("memoize", false, "memoize the universal transform stage (requires -cache)")
	httpAddr := flag.String("http", "", "HTTP observability address serving /metrics, /debug/traces and /debug/pprof (empty = disabled)")
	flag.Parse()

	clk := clock.Real{}
	fast := simnet.NewPath("local", 1) // real deployments: no simulated latency

	var backing repo.Repository
	switch {
	case *root != "" && !*mem:
		if err := os.MkdirAll(*root, 0o755); err != nil {
			log.Fatalf("placelessd: create root: %v", err)
		}
		fsRepo, err := repo.NewFS("fs", clk, fast, *root)
		if err != nil {
			log.Fatalf("placelessd: open root: %v", err)
		}
		backing = fsRepo
	default:
		backing = repo.NewMem("mem", clk, fast)
	}

	archive := repo.NewDMS("dms", clk, simnet.NewPath("local", 2))
	space := docspace.New(clk, archive)

	var observer *obs.Observer
	if *httpAddr != "" {
		observer = obs.NewObserver()
	}

	var srv *server.Server
	if *cacheBytes > 0 {
		cache := core.New(space, core.Options{
			Name:     "placelessd",
			Capacity: *cacheBytes,
			Memoize:  *memoize,
			Observer: observer,
		})
		defer cache.Close()
		srv = server.NewCached(space, backing, cache)
	} else {
		if *memoize {
			log.Fatal("placelessd: -memoize requires -cache")
		}
		srv = server.New(space, backing)
	}

	if observer != nil {
		reg := observer.Registry()
		reg.Counter("placeless_server_requests_total",
			"Wire requests handled by the TCP server.",
			func() int64 { r, _, _ := srv.Counters(); return r })
		reg.Counter("placeless_server_notifications_total",
			"Invalidations pushed to subscribed remote clients.",
			func() int64 { _, n, _ := srv.Counters(); return n })
		reg.Gauge("placeless_server_connections",
			"Currently open client connections.",
			func() int64 { _, _, c := srv.Counters(); return c })
		mux := http.NewServeMux()
		observer.Mount(mux)
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Fatalf("placelessd: http: %v", err)
			}
		}()
		fmt.Printf("placelessd: observability on http://%s/metrics\n", *httpAddr)
	}

	// Durable configuration: replay a prior journal, then append new
	// configuration operations to it. Combined with -root, a restart
	// loses nothing: content lives in the file system, the property
	// graph in the journal.
	if *journalPath != "" {
		applied, err := srv.ReplayJournal(*journalPath)
		if err != nil {
			log.Fatalf("placelessd: journal replay: %v", err)
		}
		j, err := server.OpenJournal(*journalPath)
		if err != nil {
			log.Fatalf("placelessd: journal: %v", err)
		}
		defer j.Close()
		srv.SetJournal(j)
		fmt.Printf("placelessd: replayed %d configuration entries from %s\n", applied, *journalPath)
	}

	// Graceful shutdown on interrupt: close the listener and detach
	// every remote notifier before exiting.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "placelessd: shutting down")
		srv.Close()
	}()

	fmt.Printf("placelessd: serving document space on %s (backing: %s)\n", *addr, backing.Name())
	fmt.Printf("placelessd: standard properties: %v\n", server.KnownPropertySpecs())
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("placelessd: %v", err)
	}
}
