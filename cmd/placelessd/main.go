// Command placelessd runs a Placeless Documents server: a document
// space exposed over TCP, backed by a directory on the local file
// system (or an in-memory store), with the standard active-property
// library available for remote attachment.
//
// Usage:
//
//	placelessd [-addr :7999] [-root DIR] [-mem]
//
// With -root, documents created through the server are stored as
// files under DIR, and out-of-band edits to those files are caught by
// mtime verifiers exactly as the paper describes for file-system
// repositories. With -mem, an in-memory repository is used instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

func main() {
	addr := flag.String("addr", ":7999", "TCP listen address")
	root := flag.String("root", "", "directory backing document content (default: in-memory)")
	mem := flag.Bool("mem", false, "force the in-memory repository even if -root is set")
	journalPath := flag.String("journal", "", "configuration journal file; replayed at startup, appended while running")
	flag.Parse()

	clk := clock.Real{}
	fast := simnet.NewPath("local", 1) // real deployments: no simulated latency

	var backing repo.Repository
	switch {
	case *root != "" && !*mem:
		if err := os.MkdirAll(*root, 0o755); err != nil {
			log.Fatalf("placelessd: create root: %v", err)
		}
		fsRepo, err := repo.NewFS("fs", clk, fast, *root)
		if err != nil {
			log.Fatalf("placelessd: open root: %v", err)
		}
		backing = fsRepo
	default:
		backing = repo.NewMem("mem", clk, fast)
	}

	archive := repo.NewDMS("dms", clk, simnet.NewPath("local", 2))
	space := docspace.New(clk, archive)
	srv := server.New(space, backing)

	// Durable configuration: replay a prior journal, then append new
	// configuration operations to it. Combined with -root, a restart
	// loses nothing: content lives in the file system, the property
	// graph in the journal.
	if *journalPath != "" {
		applied, err := srv.ReplayJournal(*journalPath)
		if err != nil {
			log.Fatalf("placelessd: journal replay: %v", err)
		}
		j, err := server.OpenJournal(*journalPath)
		if err != nil {
			log.Fatalf("placelessd: journal: %v", err)
		}
		defer j.Close()
		srv.SetJournal(j)
		fmt.Printf("placelessd: replayed %d configuration entries from %s\n", applied, *journalPath)
	}

	// Graceful shutdown on interrupt: close the listener and detach
	// every remote notifier before exiting.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "placelessd: shutting down")
		srv.Close()
	}()

	fmt.Printf("placelessd: serving document space on %s (backing: %s)\n", *addr, backing.Name())
	fmt.Printf("placelessd: standard properties: %v\n", server.KnownPropertySpecs())
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("placelessd: %v", err)
	}
}
