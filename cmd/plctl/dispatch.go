package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"placeless/internal/server"
)

// errUsage signals a malformed command line.
var errUsage = errors.New("usage")

// dispatch executes one plctl command (everything except the blocking
// `watch`) against a connected client, reading document content from
// stdin when no file argument is given and writing results to stdout.
func dispatch(c *server.Client, cmd string, rest []string, stdin io.Reader, stdout io.Writer) error {
	content := func(idx int) ([]byte, error) {
		if len(rest) > idx {
			return os.ReadFile(rest[idx])
		}
		return io.ReadAll(stdin)
	}

	switch cmd {
	case "create":
		if len(rest) < 2 {
			return errUsage
		}
		data, err := content(2)
		if err != nil {
			return err
		}
		return c.CreateDocument(rest[0], rest[1], data)

	case "read":
		if len(rest) != 2 {
			return errUsage
		}
		data, meta, err := c.Read(rest[0], rest[1])
		if err != nil {
			return err
		}
		if _, err := stdout.Write(data); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\n[cacheability=%v cost=%v]\n", meta.Cacheability, meta.Cost)
		return nil

	case "write":
		if len(rest) < 2 {
			return errUsage
		}
		data, err := content(2)
		if err != nil {
			return err
		}
		return c.Write(rest[0], rest[1], data)

	case "addref":
		if len(rest) != 2 {
			return errUsage
		}
		return c.AddReference(rest[0], rest[1])

	case "attach":
		if len(rest) != 3 {
			return errUsage
		}
		user, personal := level(rest[1])
		return c.Attach(rest[0], user, personal, rest[2])

	case "detach":
		if len(rest) != 3 {
			return errUsage
		}
		user, personal := level(rest[1])
		return c.Detach(rest[0], user, personal, rest[2])

	case "static":
		if len(rest) < 3 {
			return errUsage
		}
		user, personal := level(rest[1])
		value := ""
		if len(rest) > 3 {
			value = rest[3]
		}
		return c.AttachStatic(rest[0], user, personal, rest[2], value)

	case "actives":
		if len(rest) != 2 {
			return errUsage
		}
		user, personal := level(rest[1])
		names, err := c.ListActives(rest[0], user, personal)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return nil

	case "describe":
		if len(rest) != 1 {
			return errUsage
		}
		text, err := c.Describe(rest[0])
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, text)
		return nil

	case "find":
		if len(rest) < 2 {
			return errUsage
		}
		value := ""
		if len(rest) > 2 {
			value = rest[2]
		}
		matches, err := c.Find(rest[0], rest[1], value)
		if err != nil {
			return err
		}
		for _, m := range matches {
			if m.Value != "" {
				fmt.Fprintf(stdout, "%s\t%s = %s\t(%s)\n", m.Doc, rest[1], m.Value, m.Level)
			} else {
				fmt.Fprintf(stdout, "%s\t%s\t(%s)\n", m.Doc, rest[1], m.Level)
			}
		}
		return nil

	case "stats":
		stats, err := c.Stats()
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(stats))
		for k := range stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(stdout, "%-15s %d\n", k, stats[k])
		}
		return nil

	default:
		return errUsage
	}
}
