package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"placeless/internal/clock"
	"placeless/internal/docspace"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

// testClient boots an in-process server and connects a client.
func testClient(t *testing.T) *server.Client {
	t.Helper()
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	space := docspace.New(clk, nil)
	srv := server.New(space, repo.NewMem("srv", clk, simnet.NewPath("loop", 1)))
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start")
	}
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		<-done
	})
	return c
}

// run executes a dispatch command with stdin content, returning stdout.
func run(t *testing.T, c *server.Client, stdin string, cmd string, rest ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := dispatch(c, cmd, rest, strings.NewReader(stdin), &out); err != nil {
		t.Fatalf("dispatch(%s %v): %v", cmd, rest, err)
	}
	return out.String()
}

func TestDispatchCreateReadWrite(t *testing.T) {
	c := testClient(t)
	run(t, c, "teh draft", "create", "notes", "alice")
	out := run(t, c, "", "read", "notes", "alice")
	if !strings.HasPrefix(out, "teh draft") || !strings.Contains(out, "cacheability=") {
		t.Fatalf("read output %q", out)
	}
	run(t, c, "v2 content", "write", "notes", "alice")
	out = run(t, c, "", "read", "notes", "alice")
	if !strings.HasPrefix(out, "v2 content") {
		t.Fatalf("after write: %q", out)
	}
}

func TestDispatchContentFromFile(t *testing.T) {
	c := testClient(t)
	path := filepath.Join(t.TempDir(), "draft.txt")
	os.WriteFile(path, []byte("file content"), 0o644)
	run(t, c, "", "create", "doc", "alice", path)
	out := run(t, c, "", "read", "doc", "alice")
	if !strings.HasPrefix(out, "file content") {
		t.Fatalf("out = %q", out)
	}
	var buf bytes.Buffer
	if err := dispatch(c, "create", []string{"doc2", "alice", "/no/such/file"}, nil, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDispatchPropertyLifecycle(t *testing.T) {
	c := testClient(t)
	run(t, c, "teh memo", "create", "memo", "alice")
	run(t, c, "", "attach", "memo", "alice", "spell-correct")
	out := run(t, c, "", "read", "memo", "alice")
	if !strings.HasPrefix(out, "the memo") {
		t.Fatalf("spell correction missing: %q", out)
	}
	if got := run(t, c, "", "actives", "memo", "alice"); !strings.Contains(got, "spell-correct") {
		t.Fatalf("actives = %q", got)
	}
	run(t, c, "", "detach", "memo", "alice", "spell-correct")
	if got := run(t, c, "", "actives", "memo", "alice"); strings.TrimSpace(got) != "" {
		t.Fatalf("actives after detach = %q", got)
	}
}

func TestDispatchAddrefAndUniversal(t *testing.T) {
	c := testClient(t)
	run(t, c, "shout", "create", "d", "alice")
	run(t, c, "", "addref", "d", "bob")
	run(t, c, "", "attach", "d", "-", "uppercase") // universal
	out := run(t, c, "", "read", "d", "bob")
	if !strings.HasPrefix(out, "SHOUT") {
		t.Fatalf("bob reads %q", out)
	}
	run(t, c, "", "static", "d", "-", "workshop", "1999")
}

func TestDispatchDescribe(t *testing.T) {
	c := testClient(t)
	run(t, c, "x", "create", "d", "alice")
	run(t, c, "", "attach", "d", "alice", "spell-correct")
	run(t, c, "", "static", "d", "-", "status", "draft")
	out := run(t, c, "", "describe", "d")
	for _, want := range []string{"document d", "owner alice", "spell-correct", "status = draft"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe output missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := dispatch(c, "describe", []string{"ghost"}, strings.NewReader(""), &buf); err == nil {
		t.Fatal("describe of missing doc succeeded")
	}
}

func TestDispatchFind(t *testing.T) {
	c := testClient(t)
	run(t, c, "1", "create", "b1", "alice")
	run(t, c, "2", "create", "b2", "alice")
	run(t, c, "3", "create", "other", "alice")
	run(t, c, "", "static", "b1", "-", "budget related")
	run(t, c, "", "static", "b2", "-", "budget related")
	run(t, c, "", "static", "other", "-", "status", "draft")

	out := run(t, c, "", "find", "alice", "budget related")
	if !strings.Contains(out, "b1") || !strings.Contains(out, "b2") || strings.Contains(out, "other") {
		t.Fatalf("find output:\n%s", out)
	}
	out = run(t, c, "", "find", "alice", "status", "draft")
	if !strings.Contains(out, "other") || !strings.Contains(out, "status = draft") {
		t.Fatalf("value-filtered find:\n%s", out)
	}
	if out := run(t, c, "", "find", "nobody", "budget related"); strings.TrimSpace(out) != "" {
		t.Fatalf("stranger sees %q", out)
	}
}

func TestDispatchStats(t *testing.T) {
	c := testClient(t)
	run(t, c, "x", "create", "d", "u")
	out := run(t, c, "", "stats")
	if !strings.Contains(out, "requests") || !strings.Contains(out, "connections") {
		t.Fatalf("stats = %q", out)
	}
}

func TestDispatchUsageErrors(t *testing.T) {
	c := testClient(t)
	bad := [][]string{
		{"create"}, {"read", "d"}, {"write"}, {"addref", "d"},
		{"attach", "d", "u"}, {"detach", "d"}, {"static", "d", "u"},
		{"actives", "d"}, {"no-such-command"},
	}
	for _, args := range bad {
		var out bytes.Buffer
		err := dispatch(c, args[0], args[1:], strings.NewReader(""), &out)
		if !errors.Is(err, errUsage) {
			t.Errorf("dispatch(%v) err = %v, want usage", args, err)
		}
	}
}

func TestDispatchServerErrorsPropagate(t *testing.T) {
	c := testClient(t)
	var out bytes.Buffer
	err := dispatch(c, "read", []string{"ghost", "u"}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "no such document") {
		t.Fatalf("err = %v", err)
	}
}
