// Command plctl is the control CLI for a running placelessd: it
// creates documents, attaches properties, reads and writes content,
// and watches invalidation pushes.
//
// Usage:
//
//	plctl [-addr host:7999] <command> [args]
//
// Commands:
//
//	create  <doc> <owner> [file]          create a document (content from file or stdin)
//	read    <doc> <user>                  print the user's view of the document
//	write   <doc> <user> [file]           replace content (from file or stdin)
//	addref  <doc> <user>                  give a user a reference
//	attach  <doc> <user|-> <spec>         attach a property (- = universal)
//	detach  <doc> <user|-> <name>         detach a property
//	static  <doc> <user|-> <key> [value]  attach a static label
//	actives <doc> <user|->                list active properties
//	describe <doc>                        print the document's full configuration
//	find    <user> <key> [value]          list documents carrying a static label
//	watch   <doc> <user>                  subscribe and print invalidations
//	stats                                 print server counters (or /metrics with -http)
//	trace   [n]                           print recent read traces (requires -http)
//	ring    [doc [user]]                  print cluster ring ownership (see below)
//	specs                                 list attachable property specs
//
// With -http set to placelessd's observability address, stats scrapes
// /metrics instead of the TCP stats op (one line per counter/gauge),
// and trace renders the last n per-read traces from /debug/traces.
//
// ring inspects consistent-hash placement (docs/CLUSTER.md). With -http
// set to a cluster-mode plcached it fetches /ring and prints live
// per-node state, shares, and — given doc/user arguments — the key's
// owner set. With `ring -nodes a,b,c [-replicas N] [-vnodes N]` it
// computes the same placement offline, for planning joins and removals
// before touching the fleet.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"

	"placeless/internal/server"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: plctl [-addr host:7999] [-http host:port] <create|read|write|addref|attach|detach|static|actives|describe|find|watch|stats|trace|ring|specs> [args]")
	os.Exit(2)
}

// level interprets the user argument: "-" selects the universal level.
func level(arg string) (user string, personal bool) {
	if arg == "-" {
		return "", false
	}
	return arg, true
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7999", "placelessd address")
	httpAddr := flag.String("http", "", "placelessd observability address (enables HTTP-backed stats/trace)")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	if cmd == "ring" {
		if err := ringCmd(*httpAddr, rest, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "plctl: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if cmd == "specs" {
		for _, s := range server.KnownPropertySpecs() {
			fmt.Println(s)
		}
		return
	}

	// Observability commands talk HTTP, not the TCP protocol.
	if cmd == "trace" || (cmd == "stats" && *httpAddr != "") {
		if *httpAddr == "" {
			fmt.Fprintln(os.Stderr, "plctl: trace requires -http (placelessd's observability address)")
			os.Exit(1)
		}
		var err error
		if cmd == "stats" {
			err = httpStats(*httpAddr, os.Stdout)
		} else {
			n := 20
			if len(rest) > 0 {
				if n, err = strconv.Atoi(rest[0]); err != nil {
					usage()
				}
			}
			err = httpTrace(*httpAddr, n, os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "plctl: %v\n", err)
			os.Exit(1)
		}
		return
	}

	c, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plctl: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	if cmd == "watch" {
		if len(rest) != 2 {
			usage()
		}
		c.OnInvalidate(func(doc, user string) {
			if user == "" {
				fmt.Printf("invalidate %s (all users)\n", doc)
			} else {
				fmt.Printf("invalidate %s (user %s)\n", doc, user)
			}
		})
		if err := c.Subscribe(rest[0], rest[1]); err != nil {
			fmt.Fprintf(os.Stderr, "plctl: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "plctl: watching %s/%s (ctrl-c to stop)\n", rest[0], rest[1])
		select {} // run until interrupted
	}

	if err := dispatch(c, cmd, rest, os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			usage()
		}
		fmt.Fprintf(os.Stderr, "plctl: %v\n", err)
		os.Exit(1)
	}
}
