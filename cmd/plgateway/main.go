// Command plgateway serves a Placeless document space over HTTP with a
// content cache in front, so plain web clients (curl, browsers) can
// read and write personalized document views.
//
// Usage:
//
//	plgateway [-addr :8099] [-root DIR] [-capacity BYTES] [-memoize]
//
// Example session:
//
//	plgateway -root /tmp/pl &
//	curl -X PUT --data-binary @draft.txt 'localhost:8099/doc/draft?user=alice'   # (doc must exist)
//	curl 'localhost:8099/doc/draft?user=alice'
//	curl 'localhost:8099/stats'
//
// Documents and properties are managed through plctl/placelessd or the
// library API; the gateway is the read/write data plane.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/httpgw"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

func main() {
	addr := flag.String("addr", ":8099", "HTTP listen address")
	root := flag.String("root", "", "directory backing document content (default: in-memory)")
	capacity := flag.Int64("capacity", 0, "cache capacity in bytes (0 = unlimited)")
	seedDocs := flag.Bool("demo", false, "create demo documents (memo for users alice/bob)")
	memoize := flag.Bool("memoize", false, "memoize the universal transform stage (MISS responses gain X-Placeless-Universal: MEMO|FULL)")
	flag.Parse()

	clk := clock.Real{}
	fast := simnet.NewPath("local", 1)

	var backing repo.Repository
	if *root != "" {
		if err := os.MkdirAll(*root, 0o755); err != nil {
			log.Fatalf("plgateway: %v", err)
		}
		fsRepo, err := repo.NewFS("fs", clk, fast, *root)
		if err != nil {
			log.Fatalf("plgateway: %v", err)
		}
		backing = fsRepo
	} else {
		backing = repo.NewMem("mem", clk, fast)
	}

	space := docspace.New(clk, nil)
	cache := core.New(space, core.Options{Name: "gateway", Capacity: *capacity, Memoize: *memoize})

	if *seedDocs {
		if err := backing.Store("/memo", []byte("teh demo memo\n")); err != nil {
			log.Fatal(err)
		}
		if _, err := space.CreateDocument("memo", "alice", &property.RepoBitProvider{Repo: backing, Path: "/memo"}); err != nil {
			log.Fatal(err)
		}
		if _, err := space.AddReference("memo", "bob"); err != nil {
			log.Fatal(err)
		}
		if err := space.Attach("memo", "", docspace.Universal, property.NewLineNumberer(0)); err != nil {
			log.Fatal(err)
		}
		if err := space.Attach("memo", "alice", docspace.Personal, property.NewSpellCorrector(0)); err != nil {
			log.Fatal(err)
		}
		fmt.Println("plgateway: demo document 'memo' created (line-numbered for everyone, spell-corrected for alice)")
	}

	fmt.Printf("plgateway: serving on %s (backing: %s)\n", *addr, backing.Name())
	if err := http.ListenAndServe(*addr, httpgw.New(space, cache)); err != nil {
		log.Fatalf("plgateway: %v", err)
	}
}
