module placeless

go 1.22
