#!/bin/sh
# check_docs.sh — keep the documentation graph unbroken. Extracts every
# markdown link target `](...)` from the repository's *.md files,
# ignores external links (http/https/mailto) and pure in-page anchors
# (#...), strips any #fragment from the rest, and verifies each
# remaining relative path resolves from the linking file's directory.
#
# A doc that moves, a file that's renamed, or a typo'd cross-reference
# fails this check with one line per broken link. CI runs it on every
# push; `make check-docs` runs it locally.
#
# Usage: scripts/check_docs.sh  (from the repository root)
set -eu

out=$(mktemp)
trap 'rm -f "$out"' EXIT INT TERM

# find keeps this working if deeper doc trees appear later. PAPERS.md
# and SNIPPETS.md are imported reference material (external paper and
# exemplar dumps), not maintained documentation — their links point at
# assets that were never part of this repository.
for f in $(find . -name '*.md' -not -path './.git/*' \
	-not -name PAPERS.md -not -name SNIPPETS.md | sort); do
	dir=$(dirname "$f")
	# One target per line: grep the inline-link closing `](target)`
	# shape; targets never contain spaces in this repo's docs.
	grep -o ']([^)]*)' "$f" 2>/dev/null | sed 's/^](//; s/)$//' |
		while IFS= read -r target; do
			case "$target" in
			http://* | https://* | mailto:* | '#'* | '') continue ;;
			esac
			path=${target%%#*}
			[ -n "$path" ] || continue
			if ! [ -e "$dir/$path" ]; then
				echo "check_docs: $f -> $target (missing $dir/$path)"
			fi
		done
done >"$out"

if [ -s "$out" ]; then
	cat "$out" >&2
	echo "check_docs: broken relative links found" >&2
	exit 1
fi
echo "check_docs: all relative markdown links resolve"
