#!/bin/sh
# check_metrics.sh — guard the observability surface against silent
# drift. Builds placelessd and plcached and runs three daemons briefly
# (a server with a memoizing cache, the client-side cache daemon dialed
# into it, and a cluster-mode plcached routing over two ring members),
# scrapes all three /metrics endpoints, extracts the metric family
# names and types from the `# TYPE` lines, and diffs the merged set
# against docs/metric_names.golden.
#
# A metric rename, removal, or type change fails this check; adding a
# family fails it too until the golden (and docs/METRICS.md) are
# updated — which is the point: the exposition is an operator-facing
# API and changes to it must be deliberate.
#
# Usage: scripts/check_metrics.sh  (from the repository root)
set -eu

GOLDEN=docs/metric_names.golden
TCP_PORT=${PLACELESS_CHECK_TCP_PORT:-17891}
HTTP_PORT=${PLACELESS_CHECK_HTTP_PORT:-17892}
CACHE_PORT=${PLACELESS_CHECK_CACHE_PORT:-17893}
CLUSTER_PORT=${PLACELESS_CHECK_CLUSTER_PORT:-17894}
WORK=$(mktemp -d)
trap 'kill $PID $CPID $RPID 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/placelessd" ./cmd/placelessd
go build -o "$WORK/plcached" ./cmd/plcached

# -store attaches the durable disk tier so the placeless_store_*
# families register and appear in the exposition.
"$WORK/placelessd" -mem -cache 1048576 -memoize -store "$WORK/store" \
	-addr "127.0.0.1:$TCP_PORT" -http "127.0.0.1:$HTTP_PORT" \
	>"$WORK/placelessd.log" 2>&1 &
PID=$!

# Wait for the observability endpoint to come up (placelessd serves it
# before the TCP accept loop, so a successful scrape is enough).
i=0
until curl -sf "http://127.0.0.1:$HTTP_PORT/metrics" >"$WORK/metrics.txt" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "check_metrics: placelessd never served /metrics" >&2
		cat "$WORK/placelessd.log" >&2
		exit 1
	fi
	sleep 0.1
done

# The client-side cache daemon exports the placeless_remote_* families;
# dial it into the placelessd instance just started. Retry the launch
# briefly: the TCP accept loop comes up after the HTTP endpoint.
CPID=""
i=0
while :; do
	"$WORK/plcached" -server "127.0.0.1:$TCP_PORT" \
		-addr "127.0.0.1:$CACHE_PORT" >"$WORK/plcached.log" 2>&1 &
	CPID=$!
	sleep 0.2
	if kill -0 "$CPID" 2>/dev/null; then
		break
	fi
	i=$((i + 1))
	if [ "$i" -ge 25 ]; then
		echo "check_metrics: plcached never started" >&2
		cat "$WORK/plcached.log" >&2
		exit 1
	fi
done

i=0
until curl -sf "http://127.0.0.1:$CACHE_PORT/metrics" >"$WORK/cache_metrics.txt" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "check_metrics: plcached never served /metrics" >&2
		cat "$WORK/plcached.log" >&2
		exit 1
	fi
	sleep 0.1
done

# A third daemon covers the cluster surface: plcached in -cluster mode
# (two ring members dialed into the same placelessd) registers the
# placeless_cluster_* families that the single-server daemon doesn't.
RPID=""
"$WORK/plcached" -cluster "127.0.0.1:$TCP_PORT,127.0.0.1:$TCP_PORT" \
	-addr "127.0.0.1:$CLUSTER_PORT" >"$WORK/plcached_cluster.log" 2>&1 &
RPID=$!
i=0
until curl -sf "http://127.0.0.1:$CLUSTER_PORT/metrics" >"$WORK/cluster_metrics.txt" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "check_metrics: cluster-mode plcached never served /metrics" >&2
		cat "$WORK/plcached_cluster.log" >&2
		exit 1
	fi
	sleep 0.1
done

grep -h '^# TYPE' "$WORK/metrics.txt" "$WORK/cache_metrics.txt" "$WORK/cluster_metrics.txt" |
	awk '{print $3, $4}' | sort -u >"$WORK/names.txt"

if ! diff -u "$GOLDEN" "$WORK/names.txt"; then
	echo "check_metrics: /metrics family set drifted from $GOLDEN" >&2
	echo "check_metrics: if the change is intentional, update the golden and docs/METRICS.md" >&2
	exit 1
fi
echo "check_metrics: $(wc -l <"$GOLDEN" | tr -d ' ') metric families match $GOLDEN"
