package placeless_test

import (
	"fmt"
	"time"

	"placeless"
)

// Example shows the facade end-to-end: a personalized document cached
// with notifier-driven consistency, using only the top-level package.
func Example() {
	clk := placeless.NewVirtualClock(time.Date(1999, 3, 28, 0, 0, 0, 0, time.UTC))
	disk := placeless.NewMemRepository("home", clk, placeless.LocalPath(1))
	space := placeless.NewSpace(clk, nil)

	disk.Store("/doc.txt", []byte("teh content"))
	space.CreateDocument("doc", "alice", &placeless.RepoBitProvider{Repo: disk, Path: "/doc.txt"})
	space.Attach("doc", "alice", placeless.Personal, placeless.NewSpellCorrector(0))

	cache := placeless.NewCache(space, placeless.CacheOptions{})
	data, _ := cache.Read("doc", "alice")
	fmt.Printf("%s\n", data)

	cache.Write("doc", "alice", []byte("teh second draft"))
	data, _ = cache.Read("doc", "alice")
	fmt.Printf("%s\n", data)

	st := cache.Stats()
	fmt.Printf("misses=%d invalidations=%d\n", st.Misses, st.Invalidations)
	// Output:
	// the content
	// the second draft
	// misses=2 invalidations=1
}
