// Quickstart: build a document space, attach active properties,
// interpose a cache, and watch the consistency machinery work.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

func main() {
	// Everything runs on a virtual clock, so latencies below are
	// simulated — deterministic and instantaneous in wall time.
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 9, 0, 0, 0, time.UTC))

	// A repository: where document bits actually live.
	disk := repo.NewMem("homedir", clk, simnet.Local(1))

	// The Placeless middleware: a document space.
	space := docspace.New(clk, nil)
	space.SetAccessOverhead(2 * time.Millisecond)

	// Create a base document whose bit-provider points at the
	// repository, owned by alice.
	disk.Store("/notes.txt", []byte("teh meeting is at noon\nbring teh draft\n"))
	if _, err := space.CreateDocument("notes", "alice", &property.RepoBitProvider{
		Repo: disk, Path: "/notes.txt",
	}); err != nil {
		log.Fatal(err)
	}

	// Alice personalizes her view with a spelling corrector — a
	// personal active property on her reference. Bob gets a plain
	// reference.
	if err := space.Attach("notes", "alice", docspace.Personal, property.NewSpellCorrector(time.Millisecond)); err != nil {
		log.Fatal(err)
	}
	if _, err := space.AddReference("notes", "bob"); err != nil {
		log.Fatal(err)
	}

	// An application-level cache in front of the middleware.
	cache := core.New(space, core.Options{Name: "demo", HitCost: 200 * time.Microsecond})

	read := func(user string) {
		start := clk.Now()
		data, err := cache.Read("notes", user)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s read (%v):\n%s", user, clk.Now().Sub(start), data)
	}

	fmt.Println("== first reads (cache misses, full read path) ==")
	read("alice") // spell-corrected view
	read("bob")   // original view

	fmt.Println("\n== second reads (cache hits) ==")
	read("alice")
	read("bob")

	// Bob edits through Placeless: the cache's notifier invalidates
	// both users' entries automatically.
	fmt.Println("\n== bob writes through the middleware ==")
	if err := cache.Write("notes", "bob", []byte("meeting moved to 2pm, bring teh final paper\n")); err != nil {
		log.Fatal(err)
	}
	read("alice") // fresh, corrected
	read("bob")   // fresh, uncorrected

	st := cache.Stats()
	fmt.Printf("\ncache stats: hits=%d misses=%d notifications=%d invalidations=%d\n",
		st.Hits, st.Misses, st.Notifications, st.Invalidations)
}
