// Webproxy: per-user personalized web caching.
//
// Documents originate from web servers at different network distances
// (campus vs cross-country) with HTTP-style TTL consistency. Users
// personalize their views — translation, summarization, a live
// portfolio page fed by an external stock quote — and the cache copes
// with TTL expiry, per-user versions, signature sharing, and
// threshold-based invalidation of the volatile page.
//
// Run with: go run ./examples/webproxy
package main

import (
	"fmt"
	"log"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

func main() {
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 9, 0, 0, 0, time.UTC))

	campus := repo.NewWeb("parcweb", clk, simnet.LAN(1), 30*time.Second, true)
	faraway := repo.NewWeb("gatech", clk, simnet.WAN(2), 30*time.Second, true)

	space := docspace.New(clk, nil)
	space.SetAccessOverhead(2 * time.Millisecond)
	cache := core.New(space, core.Options{Name: "proxy", HitCost: 200 * time.Microsecond})

	// Two pages, one nearby, one across the country.
	campus.SetPage("/index.html", []byte("welcome to the parc web server\nthe paper archive is here\n"))
	faraway.SetPage("/research.html", []byte("the systems group studies caching and document systems\n"))
	must2(space.CreateDocument("parc-home", "proxyadmin", &property.RepoBitProvider{Repo: campus, Path: "/index.html"}))
	must2(space.CreateDocument("gt-research", "proxyadmin", &property.RepoBitProvider{Repo: faraway, Path: "/research.html"}))

	// Users with different personalizations of the same page.
	for _, user := range []string{"marie", "sam"} {
		must2(space.AddReference("parc-home", user))
		must2(space.AddReference("gt-research", user))
	}
	// Marie reads French; Sam wants summaries.
	must(space.Attach("parc-home", "marie", docspace.Personal, property.NewTranslator(3*time.Millisecond)))
	must(space.Attach("parc-home", "sam", docspace.Personal, property.NewSummarizer(1, time.Millisecond)))

	read := func(doc, user string) time.Duration {
		start := clk.Now()
		data, err := cache.Read(doc, user)
		if err != nil {
			log.Fatal(err)
		}
		d := clk.Now().Sub(start)
		fmt.Printf("  %-5s %-12s %8v  %q\n", user, doc, d, firstLine(data))
		return d
	}

	fmt.Println("== cold reads (misses; far page pays the WAN) ==")
	read("parc-home", "marie")
	read("parc-home", "sam")
	read("gt-research", "marie")
	read("gt-research", "sam")

	fmt.Println("\n== warm reads (hits; TTL verifiers are local, so sub-millisecond) ==")
	read("parc-home", "marie")
	read("gt-research", "sam")

	st := cache.Stats()
	fmt.Printf("\nsignature sharing: gt-research is untransformed for both users -> "+
		"stored=%d bytes for logical=%d bytes (shared entries: %d)\n",
		st.BytesStored, st.BytesLogical, st.SharedEntries)

	fmt.Println("\n== the far page changes at its origin; within TTL the proxy serves the cached copy ==")
	faraway.SetPage("/research.html", []byte("UPDATED: new projects posted\n"))
	read("gt-research", "marie")
	fmt.Println("   (still the old copy — the web's TTL consistency tolerates this)")
	clk.Advance(31 * time.Second)
	fmt.Println("-- 31 simulated seconds later, the TTL verifier expires the entry --")
	read("gt-research", "marie")

	fmt.Println("\n== a portfolio page with threshold invalidation ==")
	quote := property.NewExternalVar("XRX", 55.00)
	campus.SetPage("/portfolio.html", []byte("your holdings: 100 shares of Xerox\n"))
	must2(space.CreateDocument("portfolio", "marie", &property.RepoBitProvider{Repo: campus, Path: "/portfolio.html"}))
	ext := property.NewExternalInfo(quote, property.ByThreshold, time.Millisecond)
	ext.Tolerance = 1.0 // ignore moves under a dollar
	must(space.Attach("portfolio", "marie", docspace.Personal, ext))

	read("portfolio", "marie")
	quote.Set(55.40) // insignificant
	fmt.Println("   quote moves 55.00 -> 55.40 (within tolerance):")
	read("portfolio", "marie")
	quote.Set(58.75) // significant
	fmt.Println("   quote jumps to 58.75 (beyond tolerance):")
	read("portfolio", "marie")

	final := cache.Stats()
	fmt.Printf("\nproxy stats: hits=%d misses=%d verifier-rejects=%d hit-ratio=%.0f%%\n",
		final.Hits, final.Misses, final.VerifierRejects, final.HitRatio()*100)
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2[T any](v T, err error) T {
	must(err)
	return v
}
