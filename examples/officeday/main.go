// Officeday: a simulated workday across the whole system — groups,
// collections, property-based search, versioning, compression,
// replication, audit trails, and the cache keeping up with all of it.
//
// Run with: go run ./examples/officeday
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2[T any](v T, err error) T {
	must(err)
	return v
}

func main() {
	clk := clock.NewVirtual(time.Date(1999, 3, 29, 8, 0, 0, 0, time.UTC)) // Monday, 8am
	disk := repo.NewMem("fileserver", clk, simnet.Local(1))
	dms := repo.NewDMS("dms", clk, simnet.Local(2))
	offsite := repo.NewMem("offsite", clk, simnet.WAN(3))

	space := docspace.New(clk, dms)
	space.SetAccessOverhead(2 * time.Millisecond)
	cache := core.New(space, core.Options{Name: "office", HitCost: 200 * time.Microsecond})

	// The finance group shares one view of the budget documents.
	space.DefineGroup("finance", "fran", "felix")

	fmt.Println("== 8:00 — the quarterly report is assembled as a collection ==")
	sections := []string{"q1-summary", "q1-numbers", "q1-outlook"}
	collection := property.NewCollection("q1-report", sections...)
	for _, id := range sections {
		disk.Store("/"+id, []byte(fmt.Sprintf("%s: teh figures look strong this quarter\n", id)))
		must2(space.CreateDocument(id, "cfo", &property.RepoBitProvider{Repo: disk, Path: "/" + id}))
		must(space.Attach(id, "", docspace.Universal, collection))
		must(space.AttachStatic(id, "", docspace.Universal, property.Static{Key: "budget related"}))
		must2(space.AddReference(id, "finance"))
	}
	// Universal behaviours on the summary: versioning + compressed
	// storage + an audit trail for compliance.
	trail := property.NewAuditTrail()
	versioning := property.NewVersioning()
	must(space.Attach("q1-summary", "", docspace.Universal, versioning))
	must(space.Attach("q1-summary", "", docspace.Universal, property.NewCompressor(6, 0)))
	must(space.Attach("q1-summary", "", docspace.Universal, trail))
	// The group's shared reference corrects spelling for everyone in
	// finance (fran and felix both resolve to it).
	must(space.Attach("q1-summary", "finance", docspace.Personal, property.NewSpellCorrector(time.Millisecond)))
	// Nightly off-site replication, also on the group reference.
	must(space.Attach("q1-summary", "finance", docspace.Personal,
		property.NewReplicator(offsite, "/backup/q1-summary", 24*time.Hour)))

	fmt.Println("== 9:00 — fran finds her budget documents by property ==")
	for _, m := range space.FindByStatic("fran", "budget related", "") {
		fmt.Printf("  %-12s (%s property)\n", m.Doc, m.Level)
	}

	fmt.Println("\n== 9:30 — fran opens the summary; the collection prefetches the siblings ==")
	view := must2(cache.Read("q1-summary", "fran"))
	fmt.Printf("  fran sees: %s", view)
	st := cache.Stats()
	fmt.Printf("  prefetched sibling sections: %d\n", st.Prefetches)
	d := must2OK(clk, func() ([]byte, error) { return cache.Read("q1-numbers", "fran") })
	fmt.Printf("  q1-numbers first touch: %v (prefetched hit)\n", d)

	fmt.Println("\n== 10:00 — felix (same group) reads; the group shares the entry ==")
	before := cache.Stats()
	felixView := must2(cache.Read("q1-summary", "felix"))
	after := cache.Stats()
	fmt.Printf("  felix sees the corrected text: %v\n", strings.Contains(string(felixView), "the figures"))
	fmt.Printf("  served as a hit on the group entry: %v\n", after.Hits == before.Hits+1)

	fmt.Println("\n== 11:00 — fran revises the summary ==")
	must(cache.Write("q1-summary", "fran", []byte("q1-summary: teh final figures, approved\n")))
	fmt.Printf("  versions archived so far: %d\n", versioning.SavedVersions())
	stored := must2(disk.Fetch("/q1-summary"))
	fmt.Printf("  repository holds compressed bytes (%d B, not plaintext): %v\n",
		len(stored.Data), !strings.Contains(string(stored.Data), "figures"))
	fresh := must2(cache.Read("q1-summary", "felix"))
	fmt.Printf("  felix immediately sees the new text: %s", fresh)

	fmt.Println("\n== 18:00 — end of day: replication runs on its timer ==")
	clk.AdvanceTo(time.Date(1999, 3, 30, 9, 0, 0, 0, time.UTC))
	backup := must2(offsite.Fetch("/backup/q1-summary"))
	fmt.Printf("  off-site backup present (%d B)\n", len(backup.Data))

	fmt.Println("\n== compliance check: the audit trail saw everything ==")
	recs := trail.Records()
	reads, writes, forwarded := 0, 0, 0
	for _, r := range recs {
		switch {
		case r.Kind.String() == "getOutputStream":
			writes++
		default:
			reads++
		}
		if r.Forwarded {
			forwarded++
		}
	}
	fmt.Printf("  audited accesses: %d reads, %d writes (%d observed via cache event forwarding)\n",
		reads, writes, forwarded)

	final := cache.Stats()
	fmt.Printf("\ncache: hits=%d misses=%d prefetches=%d notifications=%d shared-entries=%d\n",
		final.Hits, final.Misses, final.Prefetches, final.Notifications, final.SharedEntries)
}

// must2OK times fn on the virtual clock.
func must2OK(clk *clock.Virtual, fn func() ([]byte, error)) time.Duration {
	start := clk.Now()
	if _, err := fn(); err != nil {
		log.Fatal(err)
	}
	return clk.Now().Sub(start)
}
