// Remotecache: the paper's full deployment in one process — a
// Placeless server fronting the repositories, and two "application
// machines", each with its own connection and local cache. Doug's
// write on one machine invalidates Eyal's cached copy on the other via
// the server's notifier push; a TTL-limited web page expires on
// schedule in the remote cache even though verifier code never crosses
// the wire.
//
// Run with: go run ./examples/remotecache
package main

import (
	"fmt"
	"log"
	"time"

	"placeless"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	// Server side: virtual clock, repositories, document space.
	clk := placeless.NewVirtualClock(time.Date(1999, 3, 28, 9, 0, 0, 0, time.UTC))
	disk := repo.NewMem("serverdisk", clk, simnet.Local(1))
	web := repo.NewWeb("news", clk, simnet.LAN(2), 30*time.Second, true)
	space := docspace.New(clk, nil)
	srv := server.New(space, disk)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	defer func() {
		srv.Close()
		<-done
	}()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()
	fmt.Printf("placeless server listening on %s\n\n", addr)

	// Two application machines.
	dial := func(name string) (*server.Client, *placeless.RemoteCache) {
		c, err := server.Dial(addr)
		must(err)
		cache := placeless.NewRemoteCache(c, placeless.RemoteCacheOptions{Clock: clk})
		fmt.Printf("machine %s connected with a local cache\n", name)
		return c, cache
	}
	eyalClient, eyalCache := dial("eyal-laptop")
	_, dougCache := dial("doug-desktop")

	// Eyal creates the draft and personalizes it.
	must(eyalClient.CreateDocument("hotos", "eyal", []byte("teh draft, v1")))
	must(eyalClient.AddReference("hotos", "doug"))
	must(eyalClient.Attach("hotos", "eyal", true, "spell-correct"))

	fmt.Println("\n== both machines read their views ==")
	eyalView, _ := eyalCache.Read("hotos", "eyal")
	dougView, _ := dougCache.Read("hotos", "doug")
	fmt.Printf("eyal sees: %s\n", eyalView)
	fmt.Printf("doug sees: %s\n", dougView)

	fmt.Println("\n== doug edits on his machine; the push invalidates eyal's cache ==")
	must(dougCache.Write("hotos", "doug", []byte("teh draft, v2 by doug")))
	// The invalidation is pushed asynchronously over eyal's
	// connection; wait for it.
	for i := 0; i < 1000 && eyalCache.Contains("hotos", "eyal"); i++ {
		time.Sleep(time.Millisecond)
	}
	fresh, _ := eyalCache.Read("hotos", "eyal")
	fmt.Printf("eyal now sees (fresh, corrected): %s\n", fresh)
	st := eyalCache.Stats()
	fmt.Printf("eyal's cache: hits=%d misses=%d pushed-invalidations=%d\n",
		st.Hits, st.Misses, st.Invalidations)

	fmt.Println("\n== a TTL-limited web page in the remote cache ==")
	web.SetPage("/front", []byte("news: HotOS VII program posted"))
	if _, err := space.CreateDocument("front", "eyal", &property.RepoBitProvider{Repo: web, Path: "/front"}); err != nil {
		log.Fatal(err)
	}
	page, _ := eyalCache.Read("front", "eyal")
	fmt.Printf("first read:  %s\n", page)
	web.SetPage("/front", []byte("news: workshop sold out"))
	page, _ = eyalCache.Read("front", "eyal")
	fmt.Printf("within TTL:  %s   (stale, allowed by web semantics)\n", page)
	clk.Advance(31 * time.Second)
	page, _ = eyalCache.Read("front", "eyal")
	fmt.Printf("after TTL:   %s\n", page)
	fmt.Printf("ttl expiries observed by the cache: %d\n", eyalCache.Stats().TTLExpiries)
}
