// QoS cache: a Quality-of-Service property ("access time < .25s")
// keeps a latency-critical remote document resident in a pressured
// cache by inflating its replacement cost (the paper's §5 proposal).
//
// Run with: go run ./examples/qoscache
package main

import (
	"fmt"
	"log"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
	"placeless/internal/trace"
)

// run builds a pressured cache and reports the QoS document's worst
// access time with and without the property.
func run(withQoS bool) (worst time.Duration, hitRatio float64) {
	clk := clock.NewVirtual(time.Date(1999, 3, 28, 9, 0, 0, 0, time.UTC))
	local := repo.NewMem("local", clk, simnet.Local(1))
	far := repo.NewMem("farserver", clk, simnet.WAN(2))
	space := docspace.New(clk, nil)
	space.SetAccessOverhead(2 * time.Millisecond)

	const nBackground = 60
	const bgSize = 1200
	cache := core.New(space, core.Options{
		Name:     "qos-demo",
		HitCost:  200 * time.Microsecond,
		Capacity: nBackground * bgSize / 5,
	})

	// The critical document: a sizeable dashboard on a far-away
	// server. Its per-byte rebuild cost is *lower* than the
	// background documents' (which carry 100 ms render chains on
	// 1.2 KB bodies), so cost-aware replacement sacrifices it first —
	// unless the QoS property inflates its cost.
	dashboard := make([]byte, 8192)
	copy(dashboard, "ops dashboard: all systems nominal\n")
	far.Store("/dashboard", dashboard)
	if _, err := space.CreateDocument("dashboard", "ops", &property.RepoBitProvider{
		Repo: far, Path: "/dashboard",
	}); err != nil {
		log.Fatal(err)
	}
	if withQoS {
		if err := space.Attach("dashboard", "ops", docspace.Personal,
			property.NewQoS(250*time.Millisecond, 400)); err != nil {
			log.Fatal(err)
		}
	}

	// Background documents with heavy transform chains compete for
	// the same cache.
	for i := 0; i < nBackground; i++ {
		id := trace.DocID(i)
		// Distinct content per document — identical bodies would be
		// deduplicated by the cache's signature store and exert no
		// capacity pressure.
		body := make([]byte, bgSize)
		copy(body, fmt.Sprintf("background report %s\n", id))
		local.Store("/"+id, body)
		if _, err := space.CreateDocument(id, "ops", &property.RepoBitProvider{
			Repo: local, Path: "/" + id,
		}); err != nil {
			log.Fatal(err)
		}
		heavy := &property.Transformer{
			Base:          property.Base{PropName: "render"},
			ReadTransform: func(b []byte) []byte { return b },
			ExecCost:      100 * time.Millisecond,
		}
		if err := space.Attach(id, "ops", docspace.Personal, heavy); err != nil {
			log.Fatal(err)
		}
	}

	accesses := trace.Generate(trace.Config{
		Docs: nBackground, Users: 1, Length: 3000, Alpha: 1.05, Seed: 42,
	})
	var dashboardReads, dashboardHits int64
	for i, a := range accesses {
		if _, err := cache.Read(a.Doc, "ops"); err != nil {
			log.Fatal(err)
		}
		if i%25 == 24 { // the operator glances at the dashboard
			before := cache.Stats()
			start := clk.Now()
			if _, err := cache.Read("dashboard", "ops"); err != nil {
				log.Fatal(err)
			}
			d := clk.Now().Sub(start)
			after := cache.Stats()
			dashboardReads++
			if after.Hits > before.Hits {
				dashboardHits++
			}
			if dashboardReads > 1 && d > worst { // skip the compulsory miss
				worst = d
			}
		}
	}
	if dashboardReads > 0 {
		hitRatio = float64(dashboardHits) / float64(dashboardReads)
	}
	return worst, hitRatio
}

func main() {
	fmt.Println("QoS property: \"access time < .25 seconds\" on a WAN-hosted dashboard")
	fmt.Println("competing with 60 expensive background documents in a small cache.")
	fmt.Println()

	worstOff, ratioOff := run(false)
	worstOn, ratioOn := run(true)

	fmt.Printf("%-8s  %-18s  %-14s  %s\n", "config", "dashboard hit rate", "worst access", "meets <250ms")
	fmt.Printf("%-8s  %-18s  %-14v  %v\n", "qos-off",
		fmt.Sprintf("%.0f%%", ratioOff*100), worstOff, worstOff <= 250*time.Millisecond)
	fmt.Printf("%-8s  %-18s  %-14v  %v\n", "qos-on",
		fmt.Sprintf("%.0f%%", ratioOn*100), worstOn, worstOn <= 250*time.Millisecond)
	fmt.Println()
	fmt.Println("The QoS property inflates the document's replacement cost, so")
	fmt.Println("Greedy-Dual-Size keeps it resident under pressure; without it the")
	fmt.Println("background chains dominate the cost/size priority and evict it.")
}
