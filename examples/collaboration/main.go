// Collaboration: the paper's running example (Figures 1 and 2).
//
// Eyal owns the HotOS paper draft at /tilde/edelara/hotos.doc. The
// base document carries a universal versioning property; Eyal attaches
// a personal spelling corrector and a timer-driven replication
// property that keeps a copy at Rice; Paul labels his reference
// "1999 workshop submission"; Doug notes "read by 11/30". The demo
// walks the read/write paths, the per-user views, version archiving,
// end-of-day replication, and the cache invalidation that fires when
// Doug updates the draft.
//
// Run with: go run ./examples/collaboration
package main

import (
	"fmt"
	"log"
	"time"

	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/nfs"
	"placeless/internal/property"
	"placeless/internal/repo"
	"placeless/internal/simnet"
)

func main() {
	clk := clock.NewVirtual(time.Date(1998, 11, 20, 9, 0, 0, 0, time.UTC))

	// Repositories: PARC's file server (via NFS), the archive DMS,
	// and Eyal's machine at Rice across the Internet.
	parcFS := repo.NewMem("parc-nfs", clk, simnet.Local(1))
	archive := repo.NewDMS("parc-dms", clk, simnet.Local(2))
	riceFS := repo.NewMem("rice-fs", clk, simnet.WAN(3))

	space := docspace.New(clk, archive)
	space.SetAccessOverhead(2 * time.Millisecond)

	// The base document: Eyal created the draft, so he owns it; the
	// bit-provider is the NFS client for /tilde/edelara/hotos.doc.
	parcFS.Store("/tilde/edelara/hotos.doc", []byte(
		"Caching Documents with Active Properties\n"+
			"Abstract: caching in teh Placeless Documents system poses new challenges...\n"))
	if _, err := space.CreateDocument("hotos.doc", "eyal", &property.RepoBitProvider{
		Repo: parcFS, Path: "/tilde/edelara/hotos.doc",
	}); err != nil {
		log.Fatal(err)
	}

	// Universal property on the base: version on every write.
	versioning := property.NewVersioning()
	must(space.Attach("hotos.doc", "", docspace.Universal, versioning))

	// References for the co-authors.
	must2(space.AddReference("hotos.doc", "paul"))
	must2(space.AddReference("hotos.doc", "doug"))

	// Personal properties (Figure 1).
	must(space.Attach("hotos.doc", "eyal", docspace.Personal, property.NewSpellCorrector(2*time.Millisecond)))
	must(space.Attach("hotos.doc", "eyal", docspace.Personal,
		property.NewReplicator(riceFS, "/home/edelara/hotos.doc", 24*time.Hour)))
	must(space.AttachStatic("hotos.doc", "paul", docspace.Personal,
		property.Static{Key: "1999 workshop submission"}))
	must(space.AttachStatic("hotos.doc", "doug", docspace.Personal,
		property.Static{Key: "read by", Value: "11/30"}))

	// The application-level cache, and per-user NFS mounts so
	// off-the-shelf tools see plain files (Figure 2's MS-Word path).
	cache := core.New(space, core.Options{Name: "appcache", HitCost: 200 * time.Microsecond})
	eyalFS := nfs.MountCached(cache, space, "eyal")
	dougFS := nfs.MountCached(cache, space, "doug")

	fmt.Println("== per-user views ==")
	eyalView, _ := eyalFS.ReadFile("hotos.doc")
	dougView, _ := dougFS.ReadFile("hotos.doc")
	fmt.Printf("eyal (spell-corrected):\n%s\n", eyalView)
	fmt.Printf("doug (original):\n%s\n", dougView)

	fmt.Println("== eyal saves from his editor (write path) ==")
	f, err := eyalFS.Create("hotos.doc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(f, "Caching Documents with Active Properties\n")
	fmt.Fprint(f, "Abstract: active properties can modify teh content a user sees...\n")
	fmt.Fprint(f, "1. Introduction\n")
	must(f.Close())

	// The write ran through Eyal's spelling corrector before hitting
	// the repository, and the versioning property archived the old
	// draft.
	stored, _ := parcFS.Fetch("/tilde/edelara/hotos.doc")
	fmt.Printf("stored at PARC (corrected on the way down):\n%s\n", stored.Data)
	fmt.Printf("versions archived: %d\n", versioning.SavedVersions())
	statics, _ := space.Statics("hotos.doc", "", docspace.Universal)
	for _, st := range statics {
		fmt.Printf("  base static property: %s -> %s\n", st.Key, st.Value)
	}

	fmt.Println("\n== end of day: the replication property fires ==")
	clk.Advance(24 * time.Hour)
	replica, err := riceFS.Fetch("/home/edelara/hotos.doc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica at Rice (%d bytes): ok\n", len(replica.Data))

	fmt.Println("\n== doug updates the paper; the cache notifier invalidates eyal's copy ==")
	eyalFS.ReadFile("hotos.doc") // warm eyal's cache entry
	before := cache.Stats()
	must(dougFS.WriteFile("hotos.doc", []byte("Doug's revision: tightened teh abstract.\n")))
	after := cache.Stats()
	fmt.Printf("invalidations pushed by notifiers: %d\n", after.Invalidations-before.Invalidations)
	eyalView, _ = eyalFS.ReadFile("hotos.doc")
	fmt.Printf("eyal now sees (fresh + corrected):\n%s\n", eyalView)
	fmt.Printf("versions archived so far: %d\n", versioning.SavedVersions())

	st := cache.Stats()
	fmt.Printf("cache: hits=%d misses=%d notifications=%d\n", st.Hits, st.Misses, st.Notifications)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2[T any](v T, err error) T {
	must(err)
	return v
}
