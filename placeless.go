// Package placeless is a from-scratch implementation of the system in
// "Caching Documents with Active Properties" (de Lara et al., HotOS
// VII, 1999): the Placeless Documents middleware — documents with
// per-user active properties that transform content on the read and
// write paths — and the caching architecture the paper contributes,
// built on notifiers, verifiers, cacheability indicators,
// signature-shared storage, and cost-aware (Greedy-Dual-Size)
// replacement.
//
// This package is the public facade: it re-exports the library's
// central types and constructors so applications import one package.
// The implementation lives in the internal packages (internal/core,
// internal/docspace, internal/property, …); see README.md for the
// architecture tour and DESIGN.md for the paper mapping.
//
// A minimal session:
//
//	clk := placeless.NewVirtualClock(start)
//	disk := placeless.NewMemRepository("home", clk, placeless.LocalPath(1))
//	space := placeless.NewSpace(clk, nil)
//
//	disk.Store("/doc.txt", []byte("teh content"))
//	space.CreateDocument("doc", "alice", &placeless.RepoBitProvider{Repo: disk, Path: "/doc.txt"})
//	space.Attach("doc", "alice", placeless.Personal, placeless.NewSpellCorrector(0))
//
//	cache := placeless.NewCache(space, placeless.CacheOptions{})
//	data, _ := cache.Read("doc", "alice") // "the content"
package placeless

import (
	"placeless/internal/clock"
	"placeless/internal/core"
	"placeless/internal/docspace"
	"placeless/internal/obs"
	"placeless/internal/property"
	"placeless/internal/remote"
	"placeless/internal/repo"
	"placeless/internal/server"
	"placeless/internal/simnet"
)

// Document model (internal/docspace).
type (
	// Space is the Placeless middleware: base documents, per-user
	// references, property attachment, and the event-driven
	// read/write paths.
	Space = docspace.Space
	// Level selects a property attachment point: Universal (base
	// document, seen by all) or Personal (one reference).
	Level = docspace.Level
)

// Attachment levels.
const (
	// Universal properties live on the base document.
	Universal = docspace.Universal
	// Personal properties live on a single user's reference.
	Personal = docspace.Personal
)

// NewSpace returns an empty document space on the given clock; archive
// (may be nil) receives versioning snapshots.
var NewSpace = docspace.New

// Caching (internal/core) — the paper's contribution.
type (
	// Cache is the document-content cache: (doc, user)-keyed entries,
	// notifier/verifier consistency, cacheability indicators, and
	// cost-aware replacement.
	Cache = core.Cache
	// CacheOptions configures a Cache.
	CacheOptions = core.Options
	// CacheStats are the cache's cumulative counters.
	CacheStats = core.Stats
)

// NewCache returns a cache in front of a document space.
var NewCache = core.New

// Write modes.
const (
	// WriteThrough forwards writes to the middleware immediately.
	WriteThrough = core.WriteThrough
	// WriteBack buffers writes until Flush (or the periodic flush).
	WriteBack = core.WriteBack
)

// Properties (internal/property).
type (
	// Active is an event-driven property.
	Active = property.Active
	// Static is a label property.
	Static = property.Static
	// BitProvider links a base document to its content.
	BitProvider = property.BitProvider
	// RepoBitProvider is the standard repository-backed bit-provider.
	RepoBitProvider = property.RepoBitProvider
	// Verifier checks a cached entry's validity on every hit.
	Verifier = property.Verifier
	// Cacheability is a property's caching vote.
	Cacheability = property.Cacheability
)

// Cacheability votes.
const (
	// Unrestricted allows plain caching.
	Unrestricted = property.Unrestricted
	// CacheWithEvents caches but forwards operation events.
	CacheWithEvents = property.CacheWithEvents
	// Uncacheable forbids caching.
	Uncacheable = property.Uncacheable
)

// Standard property constructors.
var (
	// NewSpellCorrector fixes known misspellings on read and write.
	NewSpellCorrector = property.NewSpellCorrector
	// NewTranslator translates content to French on the read path.
	NewTranslator = property.NewTranslator
	// NewSummarizer truncates content to its first n lines.
	NewSummarizer = property.NewSummarizer
	// NewVersioning archives the previous content on every write.
	NewVersioning = property.NewVersioning
	// NewReplicator copies content to another repository on a timer.
	NewReplicator = property.NewReplicator
	// NewAuditTrail records every read and write operation.
	NewAuditTrail = property.NewAuditTrail
	// NewQoS inflates replacement cost to meet a latency target.
	NewQoS = property.NewQoS
	// NewCompressor stores content deflate-compressed.
	NewCompressor = property.NewCompressor
	// NewCollection groups related documents for prefetching.
	NewCollection = property.NewCollection
	// NewWatermarker appends a per-user banner.
	NewWatermarker = property.NewWatermarker
)

// Repositories (internal/repo) and the simulation substrate.
type (
	// Repository is a content source (file system, web server, DMS,
	// live feed).
	Repository = repo.Repository
	// MemRepository is the in-memory mutable repository.
	MemRepository = repo.Mem
	// WebRepository is the TTL-consistency web origin.
	WebRepository = repo.Web
	// DMSRepository is the versioned document-management store.
	DMSRepository = repo.DMS
	// LiveFeedRepository is the always-changing (uncacheable) source.
	LiveFeedRepository = repo.LiveFeed
	// FSRepository is backed by a directory on disk.
	FSRepository = repo.FS
	// Clock is the time source abstraction.
	Clock = clock.Clock
	// VirtualClock is the deterministic simulated clock.
	VirtualClock = clock.Virtual
	// RealClock is the wall clock.
	RealClock = clock.Real
	// NetPath models network transfer costs to a repository.
	NetPath = simnet.Path
)

// Substrate constructors.
var (
	// NewVirtualClock returns a deterministic clock starting at the
	// given time.
	NewVirtualClock = clock.NewVirtual
	// NewMemRepository returns an in-memory repository.
	NewMemRepository = repo.NewMem
	// NewWebRepository returns a TTL web origin.
	NewWebRepository = repo.NewWeb
	// NewDMSRepository returns a versioned store.
	NewDMSRepository = repo.NewDMS
	// NewLiveFeedRepository returns an always-changing source.
	NewLiveFeedRepository = repo.NewLiveFeed
	// NewFSRepository returns a repository backed by a directory.
	NewFSRepository = repo.NewFS
	// LocalPath, LANPath and WANPath are the calibrated 1999-era
	// network paths used throughout the experiments.
	LocalPath = simnet.Local
	LANPath   = simnet.LAN
	WANPath   = simnet.WAN
)

// Observability (internal/obs).
type (
	// Observer instruments one cache's read path: per-stage latency
	// histograms, verdict and invalidation-cause counters, and a ring
	// of per-read traces, all scrapeable in Prometheus text format.
	Observer = obs.Observer
	// ReadTrace is one read's record in the Observer's trace ring.
	ReadTrace = obs.ReadTrace
)

// NewObserver returns an Observer with the read-path metric families
// registered. Attach it via CacheOptions.Observer (or
// RemoteCacheOptions.Observer) and serve it with Observer.Mount; each
// Observer instruments exactly one cache.
var NewObserver = obs.NewObserver

// Client/server deployment (internal/server, internal/remote).
type (
	// Server exposes a document space over TCP.
	Server = server.Server
	// Client mirrors the Space API over a connection.
	Client = server.Client
	// RemoteCache is an application-machine cache over a Client with
	// push-based invalidation.
	RemoteCache = remote.Cache
	// RemoteCacheOptions configures a RemoteCache.
	RemoteCacheOptions = remote.Options
)

// Deployment constructors.
var (
	// NewServer returns a TCP server for a space.
	NewServer = server.New
	// NewCachedServer returns a server with a server-side cache.
	NewCachedServer = server.NewCached
	// Dial connects to a Placeless server.
	Dial = server.Dial
	// NewRemoteCache wraps a client connection with a local cache.
	NewRemoteCache = remote.New
)
