# Placeless — build, test, and experiment targets.

GO ?= go

.PHONY: all build vet test test-race race chaos fuzz store sim sim-seed cluster bench bench-smoke bench-e12 bench-e13 bench-e14 bench-e15 bench-e16 bench-e17 bench-e18 cover check-metrics check-docs experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Focused race sweep over the concurrent subsystems (what CI runs):
# the sharded cache core and the TCP server/remote-cache pair, twice,
# so scheduling-order-dependent races get two chances to surface.
race:
	$(GO) test -race -count=2 ./internal/core/... ./internal/server/... ./internal/remote/... ./internal/obs/... ./internal/store/...

# Fault-injection suite: wedged servers, kill/restart cycles, degraded
# modes, reconnect/resubscribe/flush. The short timeout is part of the
# contract — a chaos test that hangs IS the failure it hunts.
chaos:
	$(GO) test -race -run Chaos -timeout 120s ./internal/server/... ./internal/remote/...

# Run the fuzz seed corpora as regression tests (no open-ended
# fuzzing; use `go test -fuzz=FuzzShardHash ./internal/core/` for that).
fuzz:
	$(GO) test -run Fuzz ./...

# Durable disk tier: unit tests + the crash-consistency sweep under
# -race, the warm-restart integration tests, then a short open-ended
# fuzz of the segment format beyond the checked-in seed corpus.
store:
	$(GO) test -race -count=1 ./internal/store/
	$(GO) test -race -run TestDurable -count=1 ./internal/core/
	$(GO) test -run NONE -fuzz FuzzSegmentRoundTrip -fuzztime 30s ./internal/store/

# Deterministic whole-stack simulation sweep: 1200 seeded schedules
# through the full stack (docspace, core cache, server, remote cache)
# with fault injection, every read checked against the stale-read
# oracle. A failure prints the seed and a replay command; see
# docs/TESTING.md.
sim:
	$(GO) test -race -timeout 45m -run TestSimSweep ./internal/sim -args -sim.seeds=1200 -sim.ops=350

# Replay one failing seed with full -v output: make sim-seed SEED=1234
sim-seed:
	$(GO) test -race -run 'TestSimSeed' -v ./internal/sim -args -sim.seed=$(SEED) -sim.ops=350

# Cluster tier: hash-ring and router unit/property tests under -race,
# the kill-during-rebalance regression schedule, then a forced
# multi-node simulation sweep (every seed runs 2–4 nodes behind the
# consistent-hash router, with node kills, joins, and leaves in the
# operation mix). See docs/CLUSTER.md.
cluster:
	$(GO) test -race -count=1 ./internal/cluster/
	$(GO) test -race -run TestScheduleKillDuringRebalance ./internal/sim
	$(GO) test -race -timeout 30m -run TestSimSweepCluster ./internal/sim -args -sim.cluster-seeds=256 -sim.ops=350

# Full benchmark sweep (Table 1 + extension experiments + micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration benchmark smoke run — the CI guard against benchmark
# rot (benchmarks that no longer compile or crash on first iteration).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Machine-readable E12 result: writes BENCH_e12.json in the working
# directory alongside the table.
bench-e12:
	$(GO) run ./cmd/plbench -experiment e12

# Machine-readable E13 result: observability overhead + stage timings.
bench-e13:
	$(GO) run ./cmd/plbench -experiment e13

# Machine-readable E14 result: connection resilience (crash/restart
# per degraded-mode policy + wedged-server call deadlines).
bench-e14:
	$(GO) run ./cmd/plbench -experiment e14

# Machine-readable E15 result: wire protocol v1 gob vs v2 pipelined
# binary framing (throughput and allocs/op per blob size, loopback).
bench-e15:
	$(GO) run ./cmd/plbench -experiment e15

# Machine-readable E16 result: aggregate warm-hit throughput vs
# cluster size under consistent-hash placement (ring-balance scaling).
bench-e16:
	$(GO) run ./cmd/plbench -experiment e16

# Machine-readable E17 result: longest-shared-prefix chain caching —
# miss-path cost vs fan-out under no memo / single-cut / multi-cut.
bench-e17:
	$(GO) run ./cmd/plbench -experiment e17

# Machine-readable E18 result: trace-driven swarm frontier — one
# generated op stream (Zipf docs, diurnal intensity, chain churn,
# flash crowd) over single/cluster/write-back deployments, reported
# as a latency/staleness/recompute-cost table (BENCH_swarm.json).
bench-e18:
	$(GO) run ./cmd/plbench -experiment e18

# Per-package statement coverage summary (what CI uploads as an
# artifact). Writes cover.out in the working directory.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# Scrape briefly-run daemons (placelessd, plcached, cluster-mode
# plcached) and diff the /metrics family set against
# docs/metric_names.golden (what CI runs).
check-metrics:
	sh scripts/check_metrics.sh

# Verify every relative link in the repository's markdown resolves
# (what CI runs).
check-docs:
	sh scripts/check_docs.sh

# Human-readable experiment tables (what EXPERIMENTS.md records).
experiments:
	$(GO) run ./cmd/plbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/collaboration
	$(GO) run ./examples/webproxy
	$(GO) run ./examples/qoscache
	$(GO) run ./examples/officeday
	$(GO) run ./examples/remotecache

clean:
	$(GO) clean ./...
