# Placeless — build, test, and experiment targets.

GO ?= go

.PHONY: all build vet test test-race bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full benchmark sweep (Table 1 + E1–E9 + micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Human-readable experiment tables (what EXPERIMENTS.md records).
experiments:
	$(GO) run ./cmd/plbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/collaboration
	$(GO) run ./examples/webproxy
	$(GO) run ./examples/qoscache
	$(GO) run ./examples/officeday
	$(GO) run ./examples/remotecache

clean:
	$(GO) clean ./...
